// Package session wires the full RTC pipeline into one deterministic
// discrete-event simulation: synthetic video source -> encoder controller
// (the paper's contribution or a baseline) -> x264-like encoder -> RTP
// packetizer -> pacer -> bottleneck link -> reassembler -> jitter buffer ->
// display, with a feedback path (per-packet arrival reports -> bandwidth
// estimator -> controller) closing the loop.
//
// A session is a pure function of its Config: same config, same seeds, same
// per-frame ledger. Run executes a single session end to end; New builds a
// Session on an externally owned scheduler so several flows can share one
// bottleneck link (see the fairness experiment).
package session

import (
	"fmt"
	"time"

	"rtcadapt/internal/audio"
	"rtcadapt/internal/cc"
	"rtcadapt/internal/codec"
	"rtcadapt/internal/core"
	"rtcadapt/internal/fb"
	"rtcadapt/internal/fec"
	"rtcadapt/internal/metrics"
	"rtcadapt/internal/netem"
	"rtcadapt/internal/obs"
	"rtcadapt/internal/pacer"
	"rtcadapt/internal/rtp"
	"rtcadapt/internal/simtime"
	"rtcadapt/internal/trace"
	"rtcadapt/internal/units"
	"rtcadapt/internal/video"
)

// Config describes one end-to-end run.
type Config struct {
	// Duration is the capture span in virtual time. Default 30 s.
	Duration time.Duration
	// StartAt delays the session start (capture, feedback, pacing); the
	// default is zero. Used to stagger flows in multi-flow experiments.
	StartAt time.Duration
	// Seed drives every random component. Runs with equal Config are
	// identical.
	Seed int64

	// Content selects the video class. FPS defaults to 30.
	Content video.Class
	FPS     int
	// VideoSource overrides the synthetic source entirely (e.g. a
	// video.TraceSource replaying recorded complexity); Content/FPS are
	// ignored when set.
	VideoSource video.FrameSource
	// Audio adds an Opus-like 32 kbps voice stream sharing the
	// bottleneck; its quality is reported in Result.Audio.
	Audio bool

	// Trace drives the forward (media) link capacity. Required unless
	// ForwardLink is provided.
	Trace *trace.Trace
	// ForwardLink, when non-nil, is an externally owned (possibly
	// shared) bottleneck; the session sends into it but does not attach
	// a receiver — the owner must route delivered packets back via
	// Deliver (e.g. through an SSRCDemux). PropDelay/JitterAmp/LossProb
	// and queue settings are ignored in that case.
	ForwardLink *netem.Link
	// PropDelay is the one-way propagation delay each way. Zero means
	// 25 ms.
	PropDelay time.Duration
	// JitterAmp adds uniform per-packet delay jitter on the forward
	// link.
	JitterAmp time.Duration
	// LossProb is the forward-link random loss probability.
	LossProb float64
	// BurstLoss optionally adds a Gilbert-Elliott burst-loss process on
	// the forward link.
	BurstLoss *netem.GilbertElliott
	// FeedbackLossProb is the reverse-link random loss probability
	// (feedback packets).
	FeedbackLossProb float64
	// QueueLimitBytes bounds the forward bottleneck queue (zero: 150 KB).
	QueueLimitBytes units.Bytes

	// NACK enables receiver NACKs and sender retransmission (RFC 4585
	// style loss recovery). Off by default.
	NACK bool
	// Probing enables periodic padding probe clusters that rediscover
	// capacity quickly (libwebrtc-style probing); effective with the
	// default GCC estimator. Off by default.
	Probing bool
	// FECGroupSize enables XOR forward error correction with one repair
	// packet per group of this many media packets (FlexFEC style);
	// zero disables FEC. The controller's media target is reduced by
	// the FEC overhead so total send rate still matches the estimate.
	FECGroupSize int

	// MTU is the media payload size per packet (zero: 1200).
	MTU int
	// FeedbackInterval is the receiver report cadence (zero: 50 ms).
	FeedbackInterval time.Duration

	// InitialRate seeds the estimator and encoder (zero: 1 Mbps).
	InitialRate units.BitsPerSec

	// LatenessBudget is the receiver's interactive rendering budget
	// (see rtp.JitterBuffer). Zero keeps the 600 ms default; negative
	// disables it.
	LatenessBudget time.Duration

	// SSRC identifies this flow on a shared link. Zero derives one from
	// the seed.
	SSRC uint32

	// Controller is the encoder controller under test. Required; a
	// Controller must not be reused across runs.
	Controller core.Controller
	// NewEstimator constructs the bandwidth estimator; nil means GCC
	// with defaults. The capacity function argument reads the true
	// forward-link capacity (used by the oracle).
	NewEstimator func(capacity cc.CapacityFunc) cc.Estimator

	// Encoder optionally overrides encoder parameters. Zero fields take
	// the codec defaults; TargetBitrate, FPS and Seed are always set by
	// the session.
	Encoder codec.Config

	// Recorder is the flight recorder. New binds it to the scheduler
	// clock and threads it through every subsystem (estimator, codec,
	// pacer, forward link, and — via obs.Instrumentable — the
	// controller). Nil disables recording; results are bit-identical
	// either way.
	Recorder *obs.Recorder

	// Sched selects the scheduler implementation Run constructs (zero:
	// the timer wheel). Both implementations fire the identical event
	// sequence — this switch exists for differential testing
	// (TestWheelMatchesHeap) and only changes host-CPU work. Ignored by
	// RunOn, which receives its scheduler from the caller.
	Sched simtime.Config

	// PacerBurst, when positive, lets the pacer release up to this many
	// bytes of queued packets in one scheduled event instead of one event
	// per packet (see pacer.Config.Burst). Zero keeps per-packet release.
	PacerBurst units.Bytes
}

// TimelinePoint is a periodic sample of the control plane, for plotting.
type TimelinePoint struct {
	At            time.Duration
	Capacity      units.BitsPerSec // true link capacity
	Estimate      units.BitsPerSec // estimator target
	EncoderTarget units.BitsPerSec // encoder ABR target
	LinkQueue     time.Duration
	PacerQueue    time.Duration
}

// Result is everything a run produces.
type Result struct {
	// Records is the per-frame ledger in capture order.
	Records []metrics.FrameRecord
	// Report aggregates the whole session.
	Report metrics.Report
	// Timeline holds 100 ms control-plane samples.
	Timeline []TimelinePoint
	// LinkStats are the forward-link counters (shared counters when the
	// link is shared).
	LinkStats netem.Stats
	// PacerDropped counts sender-side pacer overflows.
	PacerDropped int
	// PLISent counts keyframe requests from the receiver.
	PLISent int
	// NacksSent counts sequences the receiver requested; Retransmitted
	// counts packets the sender resent in response.
	NacksSent, Retransmitted int
	// FECRepairs counts repair packets sent; FECRecovered counts media
	// packets reconstructed from them at the receiver.
	FECRepairs, FECRecovered int
	// Audio is the voice-stream report (nil when Config.Audio is off).
	Audio *audio.Report
	// ProbeClusters and ProbesApplied count probing activity.
	ProbeClusters, ProbesApplied int
	// ControllerName and EstimatorName identify the control plane.
	ControllerName, EstimatorName string
	// FrameInterval echoes the capture period for window math.
	FrameInterval time.Duration
}

// frameInfo is the sender-side ledger entry awaiting receiver resolution.
type frameInfo struct {
	rec      metrics.FrameRecord
	motion   float64
	resolved bool
}

// frameInfoSlabSize batches ledger-entry allocation: entries live until
// Result, so they are carved from slabs rather than pooled.
const frameInfoSlabSize = 256

// pendingSend carries one encoded frame's packets from encode completion
// to pacer enqueue. Records and their slices are pooled per session, so
// the per-frame send path does not allocate in steady state.
type pendingSend struct {
	s       *Session
	pkts    []*rtp.Packet
	repairs []*fec.Repair
}

// sendEncodedArg dispatches a pendingSend through the scheduler's
// closure-free AtArg path; the per-frame closure it replaces allocated on
// every captured frame.
func sendEncodedArg(a any) { ps := a.(*pendingSend); ps.s.sendEncoded(ps) }

// Session is one flow wired onto a scheduler. Construct with New, drive
// the scheduler, then call Result.
type Session struct {
	cfg   Config
	sched *simtime.Scheduler

	source     video.FrameSource
	enc        *codec.Encoder
	est        cc.Estimator
	forward    *netem.Link
	reverse    *netem.Link
	packetizer *rtp.Packetizer
	history    *fb.History
	recorder   *fb.Recorder
	reasm      *rtp.Reassembler
	nackGen    *rtp.NackGenerator
	rtxBuf     *rtp.RtxBuffer
	fecEnc     *fec.GroupEncoder
	fecDec     *fec.Decoder
	audioSrc   *audio.Source
	audioRecv  *audio.Receiver
	audioSent  int
	probe      *probeController
	jbuf       *rtp.JitterBuffer
	pc         *pacer.Pacer

	capacityFn cc.CapacityFunc

	ledger            map[int]*frameInfo
	fiSlab            []frameInfo
	fiUsed            int
	sendPool          []*pendingSend
	order             []int
	timeline          []TimelinePoint
	pliSent           int
	nacksSent         int
	retransmitted     int
	fecRepairs        int
	lastPLI           time.Duration
	keyframeRequested bool
	frameInterval     time.Duration
}

// Validate checks the configuration for impossible parameterizations and
// reports the first problem found. New validates what it accepts; call
// Validate directly when building a Config that is stored or forwarded
// rather than passed straight to the constructor.
func (c *Config) Validate() error {
	if c.Trace == nil && c.ForwardLink == nil {
		return fmt.Errorf("session: Config.Trace or Config.ForwardLink is required")
	}
	if c.Controller == nil {
		return fmt.Errorf("session: Config.Controller is required")
	}
	if c.Duration < 0 {
		return fmt.Errorf("session: negative Config.Duration %v", c.Duration)
	}
	if c.FPS < 0 {
		return fmt.Errorf("session: negative Config.FPS %d", c.FPS)
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("session: Config.LossProb %v outside [0, 1]", c.LossProb)
	}
	if c.FeedbackLossProb < 0 || c.FeedbackLossProb > 1 {
		return fmt.Errorf("session: Config.FeedbackLossProb %v outside [0, 1]", c.FeedbackLossProb)
	}
	if c.QueueLimitBytes < 0 {
		return fmt.Errorf("session: negative Config.QueueLimitBytes %d", c.QueueLimitBytes)
	}
	if c.FECGroupSize < 0 {
		return fmt.Errorf("session: negative Config.FECGroupSize %d", c.FECGroupSize)
	}
	if c.MTU < 0 {
		return fmt.Errorf("session: negative Config.MTU %d", c.MTU)
	}
	if c.InitialRate < 0 {
		return fmt.Errorf("session: negative Config.InitialRate %v", float64(c.InitialRate))
	}
	if err := c.Encoder.Validate(); err != nil {
		return fmt.Errorf("session: Config.Encoder: %w", err)
	}
	return nil
}

// New wires a session onto sched. When cfg.ForwardLink is nil the session
// owns a private link driven by cfg.Trace and attaches itself as its
// receiver; otherwise it sends into the shared link and the owner must
// route deliveries back through Deliver. It panics on an invalid
// configuration (see Validate).
func New(sched *simtime.Scheduler, cfg Config) *Session {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Duration == 0 {
		cfg.Duration = 30 * time.Second
	}
	if cfg.FPS == 0 {
		cfg.FPS = 30
	}
	if cfg.FeedbackInterval == 0 {
		cfg.FeedbackInterval = 50 * time.Millisecond
	}
	if cfg.InitialRate == 0 {
		cfg.InitialRate = 1e6
	}
	if cfg.SSRC == 0 {
		cfg.SSRC = uint32(cfg.Seed) + 100
	}
	cfg.Recorder.SetClock(sched)
	if in, ok := cfg.Controller.(obs.Instrumentable); ok {
		in.SetRecorder(cfg.Recorder)
	}

	s := &Session{
		cfg:     cfg,
		sched:   sched,
		ledger:  make(map[int]*frameInfo),
		lastPLI: -time.Hour,
	}

	if cfg.VideoSource != nil {
		s.source = cfg.VideoSource
	} else {
		s.source = video.NewSource(video.SourceConfig{
			Class: cfg.Content, FPS: cfg.FPS, Seed: cfg.Seed,
		})
	}
	s.frameInterval = s.source.FrameInterval()

	encCfg := cfg.Encoder
	encCfg.TargetBitrate = cfg.InitialRate
	encCfg.FPS = cfg.FPS
	encCfg.Seed = cfg.Seed + 1
	encCfg.Recorder = cfg.Recorder
	s.enc = codec.NewEncoder(encCfg)

	if cfg.ForwardLink != nil {
		s.forward = cfg.ForwardLink
	} else {
		s.forward = netem.NewLink(sched, netem.Config{
			Trace:           cfg.Trace,
			PropDelay:       cfg.PropDelay,
			JitterAmp:       cfg.JitterAmp,
			LossProb:        cfg.LossProb,
			BurstLoss:       cfg.BurstLoss,
			QueueLimitBytes: cfg.QueueLimitBytes,
			Seed:            cfg.Seed + 2,
			Recorder:        cfg.Recorder,
		})
		s.forward.SetReceiver(netem.ReceiverFunc(s.Deliver))
	}
	s.capacityFn = func(time.Duration) units.BitsPerSec { return s.forward.Capacity() }

	if cfg.NewEstimator != nil {
		s.est = cfg.NewEstimator(s.capacityFn)
	} else {
		s.est = cc.NewGCC(cc.GCCConfig{InitialRate: cfg.InitialRate, Recorder: cfg.Recorder})
	}

	// The reverse path carries only small feedback packets; a generous
	// constant-rate link models it.
	s.reverse = netem.NewLink(sched, netem.Config{
		Trace:     trace.Constant(5e6),
		PropDelay: cfg.PropDelay,
		LossProb:  cfg.FeedbackLossProb,
		Seed:      cfg.Seed + 3,
	})
	s.reverse.SetReceiver(netem.ReceiverFunc(s.onFeedback))

	s.packetizer = rtp.NewPacketizer(cfg.SSRC, 96, cfg.MTU)
	s.history = fb.NewHistory()
	s.recorder = fb.NewRecorder()
	s.reasm = rtp.NewReassembler()
	// A decoder notices a missing reference within a few frames; a
	// 15-frame horizon (~500 ms) models that detection latency and
	// bounds PLI recovery time.
	s.reasm.Horizon = 15
	if cfg.NACK {
		s.nackGen = rtp.NewNackGenerator()
		s.rtxBuf = rtp.NewRtxBuffer(512)
	}
	if cfg.FECGroupSize > 0 {
		s.fecEnc = fec.NewGroupEncoder(cfg.SSRC, cfg.FECGroupSize)
		s.fecDec = fec.NewDecoder()
	}
	if cfg.Audio {
		s.audioSrc = audio.NewSource(audio.Config{})
		s.audioRecv = audio.NewReceiver(audio.Config{})
	}
	if cfg.Probing {
		s.probe = newProbeController(s)
	}
	s.jbuf = rtp.NewJitterBuffer(0, 0)
	if cfg.LatenessBudget != 0 {
		s.jbuf.LatenessBudget = cfg.LatenessBudget
	}

	s.pc = pacer.New(sched, pacer.Config{Rate: cfg.InitialRate, Burst: cfg.PacerBurst, Recorder: cfg.Recorder}, s.sendPacket)

	// Timers all start at StartAt.
	sched.At(cfg.StartAt, func() {
		s.capture()
		sched.Tick(s.frameInterval, s.capture)
		sched.Tick(cfg.FeedbackInterval, s.feedbackTick)
		sched.Tick(100*time.Millisecond, s.sampleTimeline)
		if s.audioSrc != nil {
			s.captureAudio()
			sched.Tick(s.audioSrc.FrameDur(), s.captureAudio)
		}
		if s.probe != nil {
			s.probe.start()
		}
	})

	return s
}

// newFrameInfo carves a ledger entry from the current slab. Entries are
// referenced by the ledger map until Result, so slabs are never recycled;
// slabs are never appended to past their pre-sized capacity, so returned
// pointers stay valid.
func (s *Session) newFrameInfo() *frameInfo {
	if s.fiUsed == len(s.fiSlab) {
		s.fiSlab = make([]frameInfo, frameInfoSlabSize)
		s.fiUsed = 0
	}
	fi := &s.fiSlab[s.fiUsed]
	s.fiUsed++
	return fi
}

// acquirePending pops a pooled send record (slices already truncated by
// releasePending) or mints one on first use.
func (s *Session) acquirePending() *pendingSend {
	if n := len(s.sendPool); n > 0 {
		ps := s.sendPool[n-1]
		s.sendPool[n-1] = nil
		s.sendPool = s.sendPool[:n-1]
		return ps
	}
	return &pendingSend{s: s}
}

// releasePending nils out packet references (the pacer owns them now) and
// recycles the record; the slices keep their capacity for the next frame.
func (s *Session) releasePending(ps *pendingSend) {
	clear(ps.pkts)
	ps.pkts = ps.pkts[:0]
	clear(ps.repairs)
	ps.repairs = ps.repairs[:0]
	s.sendPool = append(s.sendPool, ps)
}

// sendEncoded enqueues one frame's packets once its encode delay elapses.
func (s *Session) sendEncoded(ps *pendingSend) {
	for _, p := range ps.pkts {
		s.pc.Enqueue(p, p.WireSize())
	}
	for _, rep := range ps.repairs {
		s.pc.Enqueue(rep, rep.WireSize())
	}
	s.releasePending(ps)
}

// SSRC returns the flow's RTP SSRC (the demux key on shared links).
func (s *Session) SSRC() uint32 { return s.cfg.SSRC }

// ReverseLink returns the link delivering feedback to this sender. It is
// exposed for topologies where a middlebox terminates feedback (the SFU
// sends its reports into this link instead of a co-located receiver).
func (s *Session) ReverseLink() *netem.Link { return s.reverse }

// sendPacket is the pacer's transmit callback.
func (s *Session) sendPacket(payload any, wireSize int) {
	switch pkt := payload.(type) {
	case *rtp.Packet:
		s.history.Add(pkt.Ext.TransportSeq, s.sched.Now(), wireSize)
		s.cfg.Recorder.PacketSent(pkt.Ext.TransportSeq, wireSize)
		if s.rtxBuf != nil {
			s.rtxBuf.Store(pkt)
		}
		s.forward.Send(netem.Packet{Size: wireSize, Payload: pkt})
	case *fec.Repair:
		s.history.Add(pkt.TransportSeq, s.sched.Now(), wireSize)
		s.cfg.Recorder.PacketSent(pkt.TransportSeq, wireSize)
		s.forward.Send(netem.Packet{Size: wireSize, Payload: pkt})
	default:
		panic("session: unknown pacer payload")
	}
}

// requestPLI arms a keyframe request, rate-limited to one per 500 ms.
func (s *Session) requestPLI() {
	if s.sched.Now()-s.lastPLI < 500*time.Millisecond {
		return
	}
	s.lastPLI = s.sched.Now()
	s.recorder.RequestPLI()
	s.pliSent++
	s.cfg.Recorder.PLISent()
}

// markDropped resolves a frame the receiver gave up on.
func (s *Session) markDropped(frameID uint32) {
	if fi, ok := s.ledger[int(frameID)]; ok && !fi.resolved {
		fi.rec.Outcome = metrics.Dropped
		fi.resolved = true
		s.cfg.Recorder.FrameDropped(int(frameID))
	}
	s.requestPLI()
}

// Deliver consumes one packet at the receiver (media or FEC repair). It
// implements netem.Receiver for privately owned links and is called by the
// SSRC demux on shared links.
func (s *Session) Deliver(np netem.Packet, at time.Duration) {
	switch pkt := np.Payload.(type) {
	case *rtp.Packet:
		s.recorder.OnPacket(pkt.Ext.TransportSeq, at, np.Size)
		if pkt.PayloadType == audioPayloadType {
			if s.audioRecv != nil {
				s.audioRecv.OnFrame(int(pkt.Ext.FrameID), pkt.Ext.CaptureTS, at)
			}
			return
		}
		if pkt.PayloadType == probePayloadType {
			return // padding: CC accounting only
		}
		s.handleMedia(pkt, at)
		if s.fecDec != nil {
			for _, rec := range s.fecDec.OnMedia(pkt.SequenceNumber) {
				s.handleMedia(rec, at)
			}
		}
	case *fec.Repair:
		s.recorder.OnPacket(pkt.TransportSeq, at, np.Size)
		if s.fecDec != nil {
			for _, rec := range s.fecDec.OnRepair(pkt) {
				s.handleMedia(rec, at)
			}
		}
	}
}

// handleMedia pushes one (received or FEC-recovered) media packet through
// the receive pipeline.
func (s *Session) handleMedia(pkt *rtp.Packet, at time.Duration) {
	if s.nackGen != nil {
		s.nackGen.OnPacket(pkt.SequenceNumber)
	}
	complete, ok := s.reasm.Push(pkt, at)
	for _, lostID := range s.reasm.Lost() {
		s.markDropped(lostID)
	}
	if !ok {
		return
	}
	// Tentative display time; decode-order dependencies and the lateness
	// budget are enforced in the assembly pass.
	displayAt := s.jbuf.PushUnordered(complete)
	fi, have := s.ledger[int(complete.FrameID)]
	if !have {
		return
	}
	fi.rec.Outcome = metrics.Delivered
	fi.rec.Arrival = complete.Arrival
	fi.rec.DisplayAt = displayAt
	fi.resolved = true
}

// onFeedback consumes one feedback report at the sender.
func (s *Session) onFeedback(np netem.Packet, at time.Duration) {
	rep := np.Payload.(fb.Report)
	results := s.history.OnReport(rep)
	if s.cfg.Recorder.Enabled() {
		lost := 0
		for _, r := range results {
			if r.Lost {
				lost++
			}
		}
		s.cfg.Recorder.FeedbackReceived(len(results)-lost, lost)
	}
	s.est.OnPacketResults(at, results)
	if s.probe != nil {
		s.probe.onResults(results)
	}
	snap := s.est.Snapshot(at)
	if snap.Target > 0 {
		s.pc.SetRate(snap.Target)
	}
	// With FEC on, the controller budgets the media share of the
	// estimate; repairs consume the rest.
	if s.fecEnc != nil {
		snap.Target = units.BitsPerSec(float64(snap.Target) / (1 + s.fecEnc.Overhead()))
	}
	s.cfg.Controller.OnFeedback(at, snap)
	if rep.PLI {
		s.keyframeRequested = true
	}
	for _, seq := range rep.Nacks {
		if s.rtxBuf == nil {
			break
		}
		if orig, ok := s.rtxBuf.Get(seq); ok {
			clone := s.packetizer.Retransmit(orig)
			s.retransmitted++
			s.pc.Enqueue(clone, clone.WireSize())
		}
	}
	// The report is fully consumed; hand its arrival buffer back to the
	// receiver-side recorder. In the loopback topology that is the same
	// recorder that produced it; on an SFU reverse path the buffers are
	// fungible. Reports lost on the reverse link are simply collected.
	s.recorder.Recycle(rep)
}

// feedbackTick flushes the receiver report onto the reverse link.
func (s *Session) feedbackTick() {
	rep := s.recorder.Flush(s.sched.Now())
	if s.nackGen != nil {
		rep.Nacks = s.nackGen.Collect(s.sched.Now())
		s.nacksSent += len(rep.Nacks)
	}
	s.reverse.Send(netem.Packet{Size: rep.WireSize(), Payload: rep})
}

// capture grabs, encodes, and packetizes one frame.
func (s *Session) capture() {
	now := s.sched.Now()
	if now >= s.cfg.StartAt+s.cfg.Duration {
		return
	}
	frame := s.source.Next()
	// Capture PTS is relative to the session start.
	frame.PTS += s.cfg.StartAt
	snap := s.est.Snapshot(now)
	ctx := core.FrameContext{
		Now:               now,
		Frame:             frame,
		FrameInterval:     s.frameInterval,
		EncoderTarget:     s.enc.TargetBitrate(),
		EncoderScale:      s.enc.Scale(),
		LastQP:            s.enc.LastQP(),
		VBVFill:           s.enc.VBVFill(),
		VBVSize:           s.enc.VBVSize(),
		PacerQueueBytes:   s.pc.QueueBytes(),
		PacerQueueDelay:   s.pc.QueueDelay(),
		InFlightBytes:     s.history.InFlight(),
		Estimate:          snap,
		KeyframeRequested: s.keyframeRequested,
	}
	d := s.cfg.Controller.BeforeEncode(ctx)
	if d.ForceKeyframe {
		s.keyframeRequested = false
	}
	ef := s.enc.Encode(frame, d)
	s.cfg.Controller.OnEncoded(now, ef)

	fi := s.newFrameInfo()
	*fi = frameInfo{
		rec: metrics.FrameRecord{
			Index:         frame.Index,
			CaptureTS:     frame.PTS,
			Bytes:         ef.Bytes(),
			QP:            ef.QP,
			Keyframe:      ef.Type == codec.TypeI,
			TemporalLayer: ef.TemporalLayer,
			SSIM:          ef.SSIM,
		},
		motion: ef.MotionRatio,
	}
	s.ledger[frame.Index] = fi
	s.order = append(s.order, frame.Index)

	if ef.Type == codec.TypeSkip {
		fi.rec.Outcome = metrics.Skipped
		fi.resolved = true
		return
	}
	ps := s.acquirePending()
	ps.pkts = s.packetizer.PacketizeAppend(ps.pkts, ef)
	if s.fecEnc != nil {
		for _, p := range ps.pkts {
			if rep := s.fecEnc.Add(p); rep != nil {
				ps.repairs = append(ps.repairs, rep)
			}
		}
		// Frame-aligned flush: repairs never wait for the next frame.
		if rep := s.fecEnc.Flush(); rep != nil {
			ps.repairs = append(ps.repairs, rep)
		}
		for _, rep := range ps.repairs {
			rep.TransportSeq = s.packetizer.AllocTransportSeq()
		}
		s.fecRepairs += len(ps.repairs)
	}
	s.sched.AfterArg(ef.EncodeTime, sendEncodedArg, ps)
}

// audioPayloadType marks audio packets on the shared path.
const audioPayloadType = 111

// captureAudio emits one audio frame straight onto the link (audio is
// tiny; production pacers treat it as pass-through).
func (s *Session) captureAudio() {
	now := s.sched.Now()
	if now >= s.cfg.StartAt+s.cfg.Duration {
		return
	}
	f := s.audioSrc.Next()
	pkt := &rtp.Packet{
		Header: rtp.Header{
			Version:        2,
			Marker:         true,
			PayloadType:    audioPayloadType,
			SequenceNumber: uint16(f.Index),
			SSRC:           s.cfg.SSRC,
		},
		Ext: rtp.Extension{
			TransportSeq: s.packetizer.AllocTransportSeq(),
			FrameID:      uint32(f.Index),
			FragCount:    1,
			CaptureTS:    f.PTS + s.cfg.StartAt,
		},
		PayloadLen: f.Bytes,
	}
	s.audioSent++
	s.history.Add(pkt.Ext.TransportSeq, now, pkt.WireSize())
	s.forward.Send(netem.Packet{Size: pkt.WireSize(), Payload: pkt})
}

// sampleTimeline records one control-plane sample.
func (s *Session) sampleTimeline() {
	now := s.sched.Now()
	s.timeline = append(s.timeline, TimelinePoint{
		At:            now,
		Capacity:      s.capacityFn(now),
		Estimate:      s.est.Snapshot(now).Target,
		EncoderTarget: s.enc.TargetBitrate(),
		LinkQueue:     s.forward.QueueDelay(),
		PacerQueue:    s.pc.QueueDelay(),
	})
	s.cfg.Recorder.QueueDepth("pacer", s.pc.QueueBytes(), s.pc.QueueDelay())
	s.cfg.Recorder.QueueDepth("link", s.forward.QueueBytes(), s.forward.QueueDelay())
}

// CaptureLedger returns the sender-side view of every captured frame —
// encoder outputs (bytes, QP, keyframe, temporal layer, encoded SSIM)
// with Outcome set only for sender-side skips — without receiver
// resolution or freeze chaining. Topologies that terminate the media
// elsewhere (e.g. the SFU) build receiver ledgers from this. Call before
// Result, which mutates the ledger.
func (s *Session) CaptureLedger() []metrics.FrameRecord {
	out := make([]metrics.FrameRecord, 0, len(s.order))
	for _, idx := range s.order {
		out = append(out, s.ledger[idx].rec)
	}
	return out
}

// Result assembles the ledger after the scheduler has run. Call once.
func (s *Session) Result() Result {
	// First enforce decode-order dependencies (H.264 P-chain): frames
	// whose references never arrived become undecodable freezes, and
	// frames whose references were repaired late (NACK) decode late.
	recs := make([]*metrics.FrameRecord, 0, len(s.order))
	for _, idx := range s.order {
		fi := s.ledger[idx]
		if !fi.resolved {
			fi.rec.Outcome = metrics.Dropped
			fi.resolved = true
		}
		recs = append(recs, &fi.rec)
	}
	metrics.EnforceDecodeOrder(recs, s.jbuf.LatenessBudget)

	records := make([]metrics.FrameRecord, 0, len(s.order))
	lastDisplayedSSIM := 1.0
	for _, idx := range s.order {
		fi := s.ledger[idx]
		switch fi.rec.Outcome {
		case metrics.Delivered:
			lastDisplayedSSIM = fi.rec.SSIM
		case metrics.Dropped:
			// The viewer saw a freeze in this slot.
			fi.rec.SSIM = codec.SkipSSIM(lastDisplayedSSIM, fi.motion)
			lastDisplayedSSIM = fi.rec.SSIM
		case metrics.Skipped:
			// Encoder already chained the skip penalty into SSIM.
			lastDisplayedSSIM = fi.rec.SSIM
		}
		records = append(records, fi.rec)
	}

	var audioRep *audio.Report
	if s.audioRecv != nil {
		rep := s.audioRecv.Report(s.audioSent)
		audioRep = &rep
	}
	probeClusters, probesApplied := 0, 0
	if s.probe != nil {
		probeClusters, probesApplied = s.probe.clusters, s.probe.applied
	}

	return Result{
		Records:        records,
		Audio:          audioRep,
		ProbeClusters:  probeClusters,
		ProbesApplied:  probesApplied,
		Report:         metrics.SummarizeAll(records, s.frameInterval),
		Timeline:       s.timeline,
		LinkStats:      s.forward.Stats(),
		PacerDropped:   s.pc.Dropped(),
		PLISent:        s.pliSent,
		NacksSent:      s.nacksSent,
		Retransmitted:  s.retransmitted,
		FECRepairs:     s.fecRepairs,
		FECRecovered:   fecRecovered(s.fecDec),
		ControllerName: s.cfg.Controller.Name(),
		EstimatorName:  s.est.Name(),
		FrameInterval:  s.frameInterval,
	}
}

// fecRecovered reads the decoder counter, tolerating a nil decoder.
func fecRecovered(d *fec.Decoder) int {
	if d == nil {
		return 0
	}
	return d.Recovered()
}

// Run executes one session end to end: the common single-flow entry point.
func Run(cfg Config) Result {
	sched := simtime.NewSchedulerWith(cfg.Sched)
	s := New(sched, cfg)
	sched.RunUntil(cfg.StartAt + s.cfg.Duration + 2*time.Second)
	return s.Result()
}

// SSRCDemux routes packets from a shared link to sessions by RTP SSRC.
type SSRCDemux struct {
	sessions map[uint32]*Session
}

// NewSSRCDemux builds a demux over the given sessions and returns it; use
// it as the shared link's receiver.
func NewSSRCDemux(sessions ...*Session) *SSRCDemux {
	d := &SSRCDemux{sessions: make(map[uint32]*Session)}
	for _, s := range sessions {
		d.sessions[s.SSRC()] = s
	}
	return d
}

// Deliver implements netem.Receiver.
func (d *SSRCDemux) Deliver(pkt netem.Packet, at time.Duration) {
	var ssrc uint32
	switch p := pkt.Payload.(type) {
	case *rtp.Packet:
		ssrc = p.SSRC
	case *fec.Repair:
		ssrc = p.SSRC
	default:
		return
	}
	if s, ok := d.sessions[ssrc]; ok {
		s.Deliver(pkt, at)
	}
}
