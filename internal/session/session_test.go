package session

import (
	"testing"
	"time"

	"rtcadapt/internal/cc"
	"rtcadapt/internal/core"
	"rtcadapt/internal/metrics"
	"rtcadapt/internal/netem"
	"rtcadapt/internal/simtime"
	"rtcadapt/internal/trace"
	"rtcadapt/internal/video"
)

func steadyConfig(ctrl core.Controller) Config {
	return Config{
		Duration:    20 * time.Second,
		Seed:        42,
		Content:     video.TalkingHead,
		Trace:       trace.Constant(2.5e6),
		InitialRate: 1e6,
		Controller:  ctrl,
	}
}

func TestSteadyStateDeliversFrames(t *testing.T) {
	res := Run(steadyConfig(core.NewNativeRC()))
	rep := res.Report
	if rep.Frames < 590 || rep.Frames > 610 {
		t.Fatalf("frames = %d, want ~600 (20s at 30fps)", rep.Frames)
	}
	deliveredFrac := float64(rep.DeliveredFrames) / float64(rep.Frames)
	if deliveredFrac < 0.98 {
		t.Errorf("delivered fraction %.3f on an uncongested link", deliveredFrac)
	}
	// One-way: 25 ms prop + serialization + small queue. P95 well under 200 ms.
	if rep.P95NetDelay > 200*time.Millisecond {
		t.Errorf("steady-state P95 latency %v too high", rep.P95NetDelay)
	}
	if rep.MeanSSIM < 0.9 {
		t.Errorf("steady-state SSIM %.3f too low", rep.MeanSSIM)
	}
}

func TestSteadyStateUtilizesLink(t *testing.T) {
	res := Run(steadyConfig(core.NewResetOnly()))
	// GCC should push the encoder toward the 2.5 Mbps capacity; demand
	// at least 40% utilization after ramp-up, and no overshoot beyond
	// capacity on average.
	second10 := metrics.Summarize(res.Records, 10*time.Second, 20*time.Second, res.FrameInterval)
	if second10.Bitrate < 1e6 {
		t.Errorf("late-session bitrate %.2f Mbps, want >= 1 (ramp-up failed)", second10.Bitrate/1e6)
	}
	if second10.Bitrate > 3e6 {
		t.Errorf("late-session bitrate %.2f Mbps exceeds capacity", second10.Bitrate/1e6)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		return Run(Config{
			Duration:    10 * time.Second,
			Seed:        7,
			Content:     video.Gaming,
			Trace:       trace.StepDrop(2.5e6, 0.8e6, 5*time.Second),
			InitialRate: 1e6,
			Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
			JitterAmp:   2 * time.Millisecond,
			LossProb:    0.001,
		})
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func dropConfig(ctrl core.Controller, seed int64) Config {
	return Config{
		Duration:    30 * time.Second,
		Seed:        seed,
		Content:     video.TalkingHead,
		Trace:       trace.StepDrop(2.5e6, 0.8e6, 10*time.Second),
		InitialRate: 1e6,
		Controller:  ctrl,
	}
}

// postDropP95 measures P95 network latency in the 5 s after the drop.
func postDropP95(res Result) time.Duration {
	rep := metrics.Summarize(res.Records, 10*time.Second, 15*time.Second, res.FrameInterval)
	return rep.P95NetDelay
}

func TestBaselineSuffersOnDrop(t *testing.T) {
	res := Run(dropConfig(core.NewNativeRC(), 42))
	p95 := postDropP95(res)
	// The motivating phenomenon must exist: the baseline's post-drop P95
	// latency spikes well above the steady-state value.
	pre := metrics.Summarize(res.Records, 5*time.Second, 10*time.Second, res.FrameInterval).P95NetDelay
	if p95 < 2*pre {
		t.Errorf("baseline post-drop P95 %v vs pre-drop %v: latency spike missing", p95, pre)
	}
	if p95 < 150*time.Millisecond {
		t.Errorf("baseline post-drop P95 %v implausibly low", p95)
	}
}

func TestAdaptiveBeatsBaselineOnDrop(t *testing.T) {
	// The paper's headline claim, single-seed smoke version: adaptive
	// must reduce post-drop P95 latency substantially.
	base := Run(dropConfig(core.NewNativeRC(), 42))
	adpt := Run(dropConfig(core.NewAdaptive(core.AdaptiveConfig{}), 42))
	bp, ap := postDropP95(base), postDropP95(adpt)
	if ap >= bp {
		t.Fatalf("adaptive post-drop P95 %v not below baseline %v", ap, bp)
	}
	reduction := 1 - ap.Seconds()/bp.Seconds()
	if reduction < 0.15 {
		t.Errorf("latency reduction only %.1f%%, want substantial", reduction*100)
	}
	t.Logf("post-drop P95: baseline=%v adaptive=%v reduction=%.1f%%", bp, ap, reduction*100)
}

func TestAdaptiveQualityNotWorse(t *testing.T) {
	base := Run(dropConfig(core.NewNativeRC(), 42))
	adpt := Run(dropConfig(core.NewAdaptive(core.AdaptiveConfig{}), 42))
	if adpt.Report.MeanSSIM < base.Report.MeanSSIM-0.01 {
		t.Errorf("adaptive SSIM %.4f clearly below baseline %.4f",
			adpt.Report.MeanSSIM, base.Report.MeanSSIM)
	}
	t.Logf("SSIM: baseline=%.4f adaptive=%.4f", base.Report.MeanSSIM, adpt.Report.MeanSSIM)
}

func TestOracleEstimatorWiring(t *testing.T) {
	cfg := dropConfig(core.NewAdaptive(core.AdaptiveConfig{}), 1)
	cfg.NewEstimator = func(capacity cc.CapacityFunc) cc.Estimator {
		return cc.NewOracle(capacity, 0.95)
	}
	res := Run(cfg)
	if res.EstimatorName != "oracle" {
		t.Errorf("estimator name %q", res.EstimatorName)
	}
	// With a clairvoyant estimator the post-drop latency is bounded by
	// the frames already encoded and queued before the drop.
	if p := postDropP95(res); p > 700*time.Millisecond {
		t.Errorf("oracle-driven post-drop P95 %v", p)
	}
}

func TestLossTriggersPLIAndRecovers(t *testing.T) {
	cfg := steadyConfig(core.NewResetOnly())
	cfg.LossProb = 0.02
	cfg.Duration = 15 * time.Second
	res := Run(cfg)
	if res.PLISent == 0 {
		t.Error("2% loss produced no PLI")
	}
	// Without NACK, every lost packet breaks the P-chain until the next
	// PLI-triggered keyframe; at 2% loss and a 500 ms PLI rate limit the
	// pipeline limps along — the realistic motivation for NACK (see
	// TestNACKRecoversLoss). Recovery must still function: some frames
	// keep flowing.
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.08 {
		t.Errorf("delivered fraction %.2f under 2%% loss: PLI recovery dead", frac)
	}
	// Keyframes must appear in response to PLI (beyond the first frame).
	kf := 0
	for _, r := range res.Records {
		if r.Keyframe {
			kf++
		}
	}
	if kf < 2 {
		t.Errorf("keyframes = %d; PLI did not force refresh", kf)
	}
}

func TestTimelineSamples(t *testing.T) {
	res := Run(steadyConfig(core.NewNativeRC()))
	if len(res.Timeline) < 150 {
		t.Fatalf("timeline has %d samples, want ~200 over 20s+drain", len(res.Timeline))
	}
	for _, p := range res.Timeline {
		if p.Capacity != 2.5e6 {
			t.Fatalf("capacity sample %v", p.Capacity)
		}
		if p.Estimate < 0 || p.EncoderTarget <= 0 {
			t.Fatalf("bad sample %+v", p)
		}
	}
}

func TestLedgerConservation(t *testing.T) {
	res := Run(dropConfig(core.NewAdaptive(core.AdaptiveConfig{}), 3))
	rep := res.Report
	if rep.DeliveredFrames+rep.SkippedFrames+rep.DroppedFrames != rep.Frames {
		t.Errorf("outcome partition broken: %+v", rep)
	}
	// Records are in capture order with consecutive indices.
	for i, r := range res.Records {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
	// All delivered frames have sane latencies.
	for _, r := range res.Records {
		if r.Outcome == metrics.Delivered {
			d := r.NetworkDelay()
			if d <= 0 || d > 5*time.Second {
				t.Fatalf("frame %d latency %v implausible", r.Index, d)
			}
			if r.DisplayAt < r.Arrival {
				t.Fatalf("frame %d displayed before arrival", r.Index)
			}
		}
	}
}

func TestPanicsOnMissingConfig(t *testing.T) {
	check := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		Run(cfg)
	}
	check("no trace", Config{Controller: core.NewNativeRC()})
	check("no controller", Config{Trace: trace.Constant(1e6)})
}

func TestNACKRecoversLoss(t *testing.T) {
	base := steadyConfig(core.NewResetOnly())
	base.LossProb = 0.03
	base.Duration = 15 * time.Second
	noNack := Run(base)

	withCfg := steadyConfig(core.NewResetOnly())
	withCfg.LossProb = 0.03
	withCfg.Duration = 15 * time.Second
	withCfg.NACK = true
	withNack := Run(withCfg)

	if withNack.NacksSent == 0 || withNack.Retransmitted == 0 {
		t.Fatalf("NACK machinery idle: nacks=%d rtx=%d", withNack.NacksSent, withNack.Retransmitted)
	}
	fracNo := float64(noNack.Report.DeliveredFrames) / float64(noNack.Report.Frames)
	fracWith := float64(withNack.Report.DeliveredFrames) / float64(withNack.Report.Frames)
	if fracWith < fracNo+0.3 {
		t.Errorf("NACK improvement too small: %.3f -> %.3f", fracNo, fracWith)
	}
	if fracWith < 0.9 {
		t.Errorf("delivery with NACK only %.3f under 3%% loss", fracWith)
	}
	// Keyframe requests should not explode when losses are repaired.
	if withNack.PLISent > noNack.PLISent*2 {
		t.Errorf("PLI exploded with NACK: %d -> %d", noNack.PLISent, withNack.PLISent)
	}
	t.Logf("delivery %.3f -> %.3f, PLI %d -> %d, rtx %d",
		fracNo, fracWith, noNack.PLISent, withNack.PLISent, withNack.Retransmitted)
}

func TestBurstLossSession(t *testing.T) {
	cfg := steadyConfig(core.NewAdaptive(core.AdaptiveConfig{}))
	cfg.Duration = 15 * time.Second
	cfg.BurstLoss = netem.NewGilbertElliott(8, 0.03)
	cfg.NACK = true
	res := Run(cfg)
	if res.LinkStats.DroppedLoss == 0 {
		t.Fatal("burst loss model inactive")
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.75 {
		t.Errorf("delivery %.3f under bursty 3%% loss with NACK", frac)
	}
}

func TestSharedLinkTwoFlows(t *testing.T) {
	mk := func(seed int64, start time.Duration) Config {
		return Config{
			Duration:    20 * time.Second,
			StartAt:     start,
			Seed:        seed,
			Content:     video.TalkingHead,
			InitialRate: 1e6,
			Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
		}
	}
	results := RunShared(
		SharedConfig{Trace: trace.Constant(3e6), Seed: 9},
		[]Config{mk(1, 0), mk(2, 0)},
	)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	var total float64
	for i, res := range results {
		if res.Report.Frames < 550 {
			t.Errorf("flow %d captured only %d frames", i, res.Report.Frames)
		}
		frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
		if frac < 0.9 {
			t.Errorf("flow %d delivered fraction %.3f", i, frac)
		}
		if res.Report.Bitrate <= 0 {
			t.Errorf("flow %d bitrate %v", i, res.Report.Bitrate)
		}
		total += res.Report.Bitrate
	}
	// The two flows cannot exceed link capacity on average.
	if total > 3.3e6 {
		t.Errorf("combined bitrate %.2f Mbps exceeds 3 Mbps capacity", total/1e6)
	}
	// Rough fairness: neither flow starves below a fifth of the other.
	a, b := results[0].Report.Bitrate, results[1].Report.Bitrate
	if a > 5*b || b > 5*a {
		t.Errorf("gross unfairness: %.2f vs %.2f Mbps", a/1e6, b/1e6)
	}
}

func TestSharedLinkStaggeredStart(t *testing.T) {
	mk := func(seed int64, start time.Duration) Config {
		return Config{
			Duration:    15 * time.Second,
			StartAt:     start,
			Seed:        seed,
			Content:     video.TalkingHead,
			InitialRate: 1e6,
			Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
		}
	}
	results := RunShared(
		SharedConfig{Trace: trace.Constant(2.5e6), Seed: 3},
		[]Config{mk(1, 0), mk(2, 10*time.Second)},
	)
	// Flow B's first capture is at its StartAt.
	if got := results[1].Records[0].CaptureTS; got != 10*time.Second {
		t.Errorf("flow B first capture at %v, want 10s", got)
	}
	// Flow A experiences the arrival of flow B as a bandwidth drop; its
	// adaptive controller must keep its post-arrival latency bounded.
	post := metrics.Summarize(results[0].Records, 10*time.Second, 15*time.Second, results[0].FrameInterval)
	if post.P95NetDelay > time.Second {
		t.Errorf("flow A post-join P95 %v", post.P95NetDelay)
	}
}

func TestFeedbackLossDegradesGracefully(t *testing.T) {
	cfg := steadyConfig(core.NewAdaptive(core.AdaptiveConfig{}))
	cfg.Duration = 15 * time.Second
	cfg.FeedbackLossProb = 0.3 // lose a third of feedback packets
	res := Run(cfg)
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.9 {
		t.Errorf("delivery %.3f with 30%% feedback loss; control loop too fragile", frac)
	}
	if res.Report.P95NetDelay > 500*time.Millisecond {
		t.Errorf("P95 %v with feedback loss on an uncongested link", res.Report.P95NetDelay)
	}
}

func TestFECRecoversWithoutRetransmissionDelay(t *testing.T) {
	cfg := steadyConfig(core.NewAdaptive(core.AdaptiveConfig{}))
	cfg.Duration = 15 * time.Second
	cfg.LossProb = 0.02
	cfg.FECGroupSize = 4
	res := Run(cfg)
	if res.FECRepairs == 0 {
		t.Fatal("no repair packets sent")
	}
	if res.FECRecovered == 0 {
		t.Fatal("no packets recovered")
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.85 {
		t.Errorf("delivery %.3f with FEC under 2%% loss", frac)
	}
	// FEC recovery happens in-band: latency must stay near lossless
	// levels, unlike NACK's +RTT repairs.
	if res.Report.P95NetDelay > 300*time.Millisecond {
		t.Errorf("P95 %v with FEC; recovery should not add RTTs", res.Report.P95NetDelay)
	}
}

func TestAudioStreamQuality(t *testing.T) {
	cfg := steadyConfig(core.NewAdaptive(core.AdaptiveConfig{}))
	cfg.Audio = true
	cfg.Duration = 15 * time.Second
	res := Run(cfg)
	if res.Audio == nil {
		t.Fatal("no audio report")
	}
	a := res.Audio
	// 15 s at 50 packets/s = ~750 frames.
	if a.Sent < 740 || a.Sent > 760 {
		t.Errorf("audio sent %d, want ~750", a.Sent)
	}
	if float64(a.Delivered)/float64(a.Sent) < 0.99 {
		t.Errorf("audio delivery %.3f on a clean link", float64(a.Delivered)/float64(a.Sent))
	}
	if a.MOS < 4.0 {
		t.Errorf("audio MOS %.2f on a clean link", a.MOS)
	}
	// Video must still work alongside audio.
	if res.Report.MeanSSIM < 0.9 {
		t.Errorf("video SSIM %.3f with audio enabled", res.Report.MeanSSIM)
	}
}

func TestAudioSuffersDuringBaselineDrop(t *testing.T) {
	// Audio shares the bottleneck queue: the baseline's post-drop queue
	// spike must hurt audio too, and the adaptive controller must protect
	// it — the cross-media benefit of fast encoder adaptation.
	mkCfg := func(ctrl core.Controller) Config {
		cfg := dropConfig(ctrl, 42)
		cfg.Audio = true
		return cfg
	}
	base := Run(mkCfg(core.NewNativeRC()))
	adpt := Run(mkCfg(core.NewAdaptive(core.AdaptiveConfig{})))
	if base.Audio == nil || adpt.Audio == nil {
		t.Fatal("missing audio reports")
	}
	if adpt.Audio.MOS <= base.Audio.MOS {
		t.Errorf("adaptive audio MOS %.2f not above baseline %.2f",
			adpt.Audio.MOS, base.Audio.MOS)
	}
	t.Logf("audio MOS: baseline=%.2f adaptive=%.2f (loss %.1f%% vs %.1f%%)",
		base.Audio.MOS, adpt.Audio.MOS, base.Audio.LossFrac*100, adpt.Audio.LossFrac*100)
}

func TestNoAudioByDefault(t *testing.T) {
	res := Run(steadyConfig(core.NewNativeRC()))
	if res.Audio != nil {
		t.Error("audio report present without Config.Audio")
	}
}

func TestCrossTrafficContention(t *testing.T) {
	// One adaptive flow shares a 3 Mbps link with unresponsive on/off
	// cross traffic; the flow must absorb the bursts without disaster.
	sched := simtime.NewScheduler()
	link := netem.NewLink(sched, netem.Config{Trace: trace.Constant(3e6), Seed: 11})
	s := New(sched, Config{
		Duration:    30 * time.Second,
		Seed:        1,
		Content:     video.TalkingHead,
		ForwardLink: link,
		InitialRate: 1e6,
		Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
	})
	link.SetReceiver(NewSSRCDemux(s))
	ct := netem.NewCrossTraffic(sched, link, netem.CrossTrafficConfig{
		Rate: 1.5e6, Seed: 12,
	})
	sched.RunUntil(32 * time.Second)
	ct.Stop()
	res := s.Result()
	if ct.Sent() == 0 {
		t.Fatal("cross traffic idle")
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.85 {
		t.Errorf("delivery %.3f under cross traffic", frac)
	}
	if res.Report.P95NetDelay > 800*time.Millisecond {
		t.Errorf("P95 %v under cross traffic", res.Report.P95NetDelay)
	}
}

func TestVideoTraceSourceSession(t *testing.T) {
	// Replay a recorded complexity trace through the full pipeline.
	recorded := video.NewSource(video.SourceConfig{Class: video.Gaming, Seed: 4}).Take(150)
	src, err := video.NewTraceSource(recorded, 30)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(Config{
		Duration:    10 * time.Second,
		Seed:        1,
		Trace:       trace.Constant(2e6),
		VideoSource: src,
		Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
	})
	if res.Report.Frames < 290 {
		t.Fatalf("frames = %d", res.Report.Frames)
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.95 {
		t.Errorf("delivery %.3f replaying a trace source", frac)
	}
}

func TestLongSessionSequenceWraparound(t *testing.T) {
	if testing.Short() {
		t.Skip("long session")
	}
	// A 5-minute session at ~2 Mbps sends ~75k packets, wrapping the
	// 16-bit RTP sequence space; NACK bookkeeping and reassembly must
	// survive the wrap under loss.
	cfg := Config{
		Duration:    5 * time.Minute,
		Seed:        1,
		Content:     video.TalkingHead,
		Trace:       trace.Constant(2e6),
		InitialRate: 1e6,
		LossProb:    0.005,
		NACK:        true,
		Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
	}
	res := Run(cfg)
	if res.Report.Frames < 8900 {
		t.Fatalf("frames = %d", res.Report.Frames)
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.97 {
		t.Errorf("delivery %.4f over a 5-minute lossy session", frac)
	}
	// Late-session health: the last minute must look like the first.
	early := metrics.Summarize(res.Records, 30*time.Second, 90*time.Second, res.FrameInterval)
	late := metrics.Summarize(res.Records, 4*time.Minute, 5*time.Minute, res.FrameInterval)
	if late.P95NetDelay > early.P95NetDelay*3+100*time.Millisecond {
		t.Errorf("late-session P95 %v degraded vs early %v (wraparound leak?)",
			late.P95NetDelay, early.P95NetDelay)
	}
}

func TestProbingSpeedsRecoveryAfterDropEnds(t *testing.T) {
	// Capacity drops 2.5 -> 0.8 at t=10s and recovers at t=20s. Without
	// probing, GCC reclaims the restored capacity at ~8%/s; with probe
	// clusters the estimator jumps to proven rates. Measure the time to
	// regain a 1.8 Mbps encode rate after recovery.
	reclaim := func(probing bool) time.Duration {
		res := Run(Config{
			Duration:    45 * time.Second,
			Seed:        5,
			Content:     video.TalkingHead,
			Trace:       trace.StepDropRecover(2.5e6, 0.8e6, 10*time.Second, 20*time.Second),
			InitialRate: 1e6,
			Probing:     probing,
			Controller:  core.NewAdaptive(core.AdaptiveConfig{}),
		})
		if probing && (res.ProbeClusters == 0 || res.ProbesApplied == 0) {
			t.Fatalf("probing inactive: clusters=%d applied=%d", res.ProbeClusters, res.ProbesApplied)
		}
		for _, p := range res.Timeline {
			if p.At >= 20*time.Second && p.EncoderTarget >= 1.8e6 {
				return p.At - 20*time.Second
			}
		}
		return time.Hour // never reclaimed
	}
	slow := reclaim(false)
	fast := reclaim(true)
	if fast >= slow {
		t.Errorf("probing did not speed reclaim: %v -> %v", slow, fast)
	}
	if fast > 10*time.Second {
		t.Errorf("probing reclaim took %v", fast)
	}
	t.Logf("reclaim to 1.8 Mbps: no-probe=%v probe=%v", slow, fast)
}

func TestProbingHarmlessOnSteadyLink(t *testing.T) {
	cfg := steadyConfig(core.NewAdaptive(core.AdaptiveConfig{}))
	cfg.Probing = true
	cfg.Duration = 15 * time.Second
	res := Run(cfg)
	if res.ProbeClusters == 0 {
		t.Fatal("no probe clusters on a steady link")
	}
	if res.Report.P95NetDelay > 250*time.Millisecond {
		t.Errorf("P95 %v with probing on a steady link", res.Report.P95NetDelay)
	}
	frac := float64(res.Report.DeliveredFrames) / float64(res.Report.Frames)
	if frac < 0.97 {
		t.Errorf("delivery %.3f with probing", frac)
	}
}
