package session

import (
	"time"

	"rtcadapt/internal/netem"
	"rtcadapt/internal/simtime"
	"rtcadapt/internal/trace"
	"rtcadapt/internal/units"
)

// SharedConfig describes the common bottleneck of a multi-flow run.
type SharedConfig struct {
	// Trace drives the shared bottleneck capacity. Required.
	Trace *trace.Trace
	// PropDelay, QueueLimitBytes, LossProb configure the shared link
	// (defaults as in netem.Config).
	PropDelay       time.Duration
	QueueLimitBytes units.Bytes
	LossProb        float64
	// Seed seeds the shared link's PRNG.
	Seed int64
	// Sched selects the scheduler implementation (zero: the timer
	// wheel); see Config.Sched.
	Sched simtime.Config
}

// RunShared executes several flows through one shared bottleneck link and
// returns their results in input order. Each flow's reverse (feedback)
// path remains private — feedback is small and never the bottleneck.
// Flows are assigned distinct SSRCs automatically if unset.
func RunShared(shared SharedConfig, flows []Config) []Result {
	if shared.Trace == nil {
		panic("session: SharedConfig.Trace is required")
	}
	sched := simtime.NewSchedulerWith(shared.Sched)
	link := netem.NewLink(sched, netem.Config{
		Trace:           shared.Trace,
		PropDelay:       shared.PropDelay,
		QueueLimitBytes: shared.QueueLimitBytes,
		LossProb:        shared.LossProb,
		Seed:            shared.Seed,
	})

	sessions := make([]*Session, len(flows))
	var end time.Duration
	for i, cfg := range flows {
		cfg.ForwardLink = link
		if cfg.SSRC == 0 {
			cfg.SSRC = uint32(i+1) * 1000
		}
		sessions[i] = New(sched, cfg)
		if e := cfg.StartAt + sessions[i].cfg.Duration; e > end {
			end = e
		}
	}
	link.SetReceiver(NewSSRCDemux(sessions...))

	sched.RunUntil(end + 2*time.Second)

	results := make([]Result, len(sessions))
	for i, s := range sessions {
		results[i] = s.Result()
	}
	return results
}
