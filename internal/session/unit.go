package session

import (
	"time"

	"rtcadapt/internal/metrics"
	"rtcadapt/internal/netem"
	"rtcadapt/internal/simtime"
)

// Unit is one session as a value-type unit of work: a global session
// index plus the full Config. The fleet runner hands Units to shards,
// each of which executes its batch sequentially on a shard-owned
// scheduler. A Unit carries no live state — everything mutable (the
// Session, its links, pools, ledger) is created inside RunOn and released
// when the unit's Summary has been extracted, which is what bounds a
// shard's live memory to a single session regardless of batch size.
//
// The Config's Controller is consumed by the run (controllers are
// stateful and must not be reused), so a Unit is itself single-use;
// fleet-scale callers derive a fresh Config per index from a pure build
// function.
type Unit struct {
	// Index is the unit's global session index; it keys the unit's slot
	// in merged fleet output and never depends on shard assignment.
	Index int
	// Cfg is the session configuration (see Config).
	Cfg Config
}

// Summary is the compact value-type result of one Unit: the aggregate
// Report plus the session counters, without the per-frame Records or the
// Timeline. At fleet scale the full ledger of every session cannot be
// retained (100k sessions x 900 frames would dwarf the shards
// themselves); Summary is the unit of merged fleet output.
type Summary struct {
	// Index echoes Unit.Index.
	Index int
	// Report aggregates the whole session (latency percentiles, SSIM,
	// freeze accounting).
	Report metrics.Report
	// LinkStats are the forward-link counters.
	LinkStats netem.Stats
	// PacerDropped counts sender-side pacer overflows.
	PacerDropped int
	// PLISent counts keyframe requests from the receiver.
	PLISent int
	// NacksSent and Retransmitted count loss-recovery activity.
	NacksSent, Retransmitted int
	// FECRepairs and FECRecovered count forward-error-correction
	// activity.
	FECRepairs, FECRecovered int
}

// Summarize compacts a full Result into a Summary for the given index.
func Summarize(index int, res Result) Summary {
	return Summary{
		Index:         index,
		Report:        res.Report,
		LinkStats:     res.LinkStats,
		PacerDropped:  res.PacerDropped,
		PLISent:       res.PLISent,
		NacksSent:     res.NacksSent,
		Retransmitted: res.Retransmitted,
		FECRepairs:    res.FECRepairs,
		FECRecovered:  res.FECRecovered,
	}
}

// RunOn executes the unit end to end on sched, which must be freshly
// constructed or freshly Reset (clock at zero, queue empty). The
// scheduler's pools are reused across consecutive RunOn calls, and
// because Reset also restarts the event sequence counter, a unit's
// Summary is byte-identical whether it ran on a fresh scheduler or a
// recycled one — the contract the fleet's shard-count invariance test
// pins.
func (u Unit) RunOn(sched *simtime.Scheduler) Summary {
	s := New(sched, u.Cfg)
	sched.RunUntil(u.Cfg.StartAt + s.cfg.Duration + 2*time.Second)
	return Summarize(u.Index, s.Result())
}
