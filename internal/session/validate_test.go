package session

import (
	"strings"
	"testing"

	"rtcadapt/internal/codec"
	"rtcadapt/internal/core"
	"rtcadapt/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := steadyConfig(core.NewNativeRC())
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	withBase := func(mut func(*Config)) Config {
		cfg := steadyConfig(core.NewNativeRC())
		mut(&cfg)
		return cfg
	}
	bad := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no trace or link", Config{Controller: core.NewNativeRC()}, "Trace or Config.ForwardLink"},
		{"no controller", Config{Trace: trace.Constant(1e6)}, "Controller"},
		{"negative duration", withBase(func(c *Config) { c.Duration = -1 }), "Duration"},
		{"loss above 1", withBase(func(c *Config) { c.LossProb = 1.5 }), "LossProb"},
		{"feedback loss above 1", withBase(func(c *Config) { c.FeedbackLossProb = 2 }), "FeedbackLossProb"},
		{"negative mtu", withBase(func(c *Config) { c.MTU = -1 }), "MTU"},
		{"bad encoder", withBase(func(c *Config) { c.Encoder = codec.Config{TemporalLayers: 3} }), "Encoder"},
	}
	for _, c := range bad {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad config", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestRunPanicsOnBadEncoder pins that session validation reaches nested
// encoder configs, the gap ctorvalidate flagged.
func TestRunPanicsOnBadEncoder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run accepted an impossible encoder config")
		}
	}()
	cfg := steadyConfig(core.NewNativeRC())
	cfg.Encoder = codec.Config{MinQP: 40, MaxQP: 20}
	Run(cfg)
}
