// Package sfu implements a selective forwarding unit for multi-party
// calls: the sender uploads one temporally layered stream; the SFU
// terminates congestion-control feedback on the uplink and forwards the
// stream to each receiver over that receiver's own downlink, dropping the
// enhancement layer (halving frame rate) for receivers whose downlink
// cannot carry the full stream — the standard architecture of
// production conferencing backends.
package sfu

import (
	"time"

	"rtcadapt/internal/cc"
	"rtcadapt/internal/codec"
	"rtcadapt/internal/fb"
	"rtcadapt/internal/metrics"
	"rtcadapt/internal/netem"
	"rtcadapt/internal/rtp"
	"rtcadapt/internal/session"
	"rtcadapt/internal/simtime"
	"rtcadapt/internal/stats"
	"rtcadapt/internal/units"
)

// Node is the forwarding unit. Construct with NewNode, attach as the
// uplink's receiver, and add receivers.
type Node struct {
	sched  *simtime.Scheduler
	sender *session.Session

	recorder *fb.Recorder // uplink arrivals -> sender feedback
	arrival  *stats.RateMeter

	receivers []*Receiver

	// LayerSelection enables per-receiver temporal-layer filtering;
	// when false the SFU forwards everything to everyone.
	LayerSelection bool

	forwarded, filtered int
}

// NewNode creates an SFU on sched that feeds congestion feedback back to
// sender every interval (zero: 50 ms).
func NewNode(sched *simtime.Scheduler, sender *session.Session, interval time.Duration) *Node {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	n := &Node{
		sched:    sched,
		sender:   sender,
		recorder: fb.NewRecorder(),
		arrival:  stats.NewRateMeter(0.5),
	}
	sched.Tick(interval, n.feedbackTick)
	return n
}

// AddReceiver attaches a downstream participant.
func (n *Node) AddReceiver(r *Receiver) { n.receivers = append(n.receivers, r) }

// Forwarded and Filtered return forwarding counters.
func (n *Node) Forwarded() int { return n.forwarded }
func (n *Node) Filtered() int  { return n.filtered }

// Deliver implements netem.Receiver for the uplink: account the packet
// for sender feedback, then fan out to receivers subject to layer
// selection.
func (n *Node) Deliver(np netem.Packet, at time.Duration) {
	pkt, ok := np.Payload.(*rtp.Packet)
	if !ok {
		return
	}
	n.recorder.OnPacket(pkt.Ext.TransportSeq, at, np.Size)
	n.arrival.Add(at.Seconds(), float64(np.Size*8))

	for _, r := range n.receivers {
		if n.LayerSelection && r.allowedLayer() == 0 && pkt.Ext.TemporalLayer > 0 {
			n.filtered++
			continue
		}
		n.forwarded++
		r.forward(pkt, np.Size)
	}
}

// feedbackTick reports uplink arrivals to the sender, aggregating any
// receiver keyframe requests.
func (n *Node) feedbackTick() {
	for _, r := range n.receivers {
		if r.takePLI() {
			n.recorder.RequestPLI()
		}
	}
	rep := n.recorder.Flush(n.sched.Now())
	n.sender.ReverseLink().Send(netem.Packet{Size: rep.WireSize(), Payload: rep})
}

// uplinkRate returns the sender's measured arrival rate at the SFU.
func (n *Node) uplinkRate() float64 {
	return n.arrival.Rate(n.sched.Now().Seconds())
}

// ReceiverConfig describes one downstream participant.
type ReceiverConfig struct {
	// Name labels the receiver in results.
	Name string
	// Downlink carries packets from the SFU to this receiver. Required.
	Downlink *netem.Link
	// LatenessBudget bounds rendering staleness (zero: 600 ms).
	LatenessBudget time.Duration
	// FeedbackInterval is the receiver's report cadence to the SFU
	// (zero: 50 ms). Reports drive the SFU's per-receiver estimator.
	FeedbackInterval time.Duration
	// InitialRate seeds the downlink estimator (zero: 1 Mbps).
	InitialRate units.BitsPerSec
}

// Receiver is one downstream participant: a downlink, a receive pipeline,
// and a per-receiver bandwidth estimator at the SFU.
type Receiver struct {
	cfg   ReceiverConfig
	sched *simtime.Scheduler
	node  *Node

	reasm    *rtp.Reassembler
	jbuf     *rtp.JitterBuffer
	recorder *fb.Recorder
	history  *fb.History
	est      cc.Estimator

	nextTransport uint32
	ledger        map[int]*receiverFrame
	sentFrames    map[uint32]bool // frame ids the SFU forwarded here
	layer         int             // current allowed temporal layer
	pliArmed      bool
	lastPLI       time.Duration
}

type receiverFrame struct {
	rec metrics.FrameRecord
}

// NewReceiver attaches a receiver to the node, wiring the downlink's
// delivery and the receiver's feedback loop.
func NewReceiver(sched *simtime.Scheduler, node *Node, cfg ReceiverConfig) *Receiver {
	if cfg.Downlink == nil {
		panic("sfu: ReceiverConfig.Downlink is required")
	}
	if cfg.FeedbackInterval <= 0 {
		cfg.FeedbackInterval = 50 * time.Millisecond
	}
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = 1e6
	}
	r := &Receiver{
		cfg:        cfg,
		sched:      sched,
		node:       node,
		reasm:      rtp.NewReassembler(),
		jbuf:       rtp.NewJitterBuffer(0, 0),
		recorder:   fb.NewRecorder(),
		history:    fb.NewHistory(),
		est:        cc.NewGCC(cc.GCCConfig{InitialRate: cfg.InitialRate}),
		ledger:     make(map[int]*receiverFrame),
		sentFrames: make(map[uint32]bool),
		layer:      1,
		lastPLI:    -time.Hour,
	}
	r.reasm.Horizon = 15
	if cfg.LatenessBudget != 0 {
		r.jbuf.LatenessBudget = cfg.LatenessBudget
	}
	cfg.Downlink.SetReceiver(netem.ReceiverFunc(r.deliver))
	sched.Tick(cfg.FeedbackInterval, r.feedbackTick)
	node.AddReceiver(r)
	return r
}

// allowedLayer returns the highest temporal layer this receiver's
// downlink sustains, with hysteresis: drop to base-layer-only when the
// downlink estimate falls below 75% of the uplink rate, return to the full
// stream only once it clearly exceeds it.
func (r *Receiver) allowedLayer() int {
	up := r.node.uplinkRate()
	if up <= 0 {
		return r.layer
	}
	est := float64(r.est.Snapshot(r.sched.Now()).Target)
	switch {
	case r.layer == 1 && est < 0.75*up:
		r.layer = 0
	case r.layer == 0 && est > 1.1*up:
		r.layer = 1
	}
	return r.layer
}

// forward sends one packet down this receiver's link, recording it in the
// SFU-side history so downlink feedback drives the estimator.
func (r *Receiver) forward(pkt *rtp.Packet, wireSize int) {
	r.sentFrames[pkt.Ext.FrameID] = true
	clone := *pkt
	clone.Ext.TransportSeq = r.nextTransport
	r.nextTransport++
	r.history.Add(clone.Ext.TransportSeq, r.sched.Now(), wireSize)
	r.cfg.Downlink.Send(netem.Packet{Size: wireSize, Payload: &clone})
}

// deliver consumes one packet at the participant.
func (r *Receiver) deliver(np netem.Packet, at time.Duration) {
	pkt := np.Payload.(*rtp.Packet)
	r.recorder.OnPacket(pkt.Ext.TransportSeq, at, np.Size)
	complete, ok := r.reasm.Push(pkt, at)
	for range r.reasm.Lost() {
		r.requestPLI()
	}
	if !ok {
		return
	}
	displayAt := r.jbuf.PushUnordered(complete)
	fi, have := r.ledger[int(complete.FrameID)]
	if !have {
		fi = &receiverFrame{}
		fi.rec.Index = int(complete.FrameID)
		fi.rec.CaptureTS = complete.CaptureTS
		fi.rec.Keyframe = complete.FrameType == 0
		fi.rec.TemporalLayer = int(complete.TemporalLayer)
		r.ledger[int(complete.FrameID)] = fi
	}
	fi.rec.Outcome = metrics.Delivered
	fi.rec.Arrival = complete.Arrival
	fi.rec.DisplayAt = displayAt
	fi.rec.Bytes = complete.Bytes
}

// Records assembles this receiver's per-frame ledger against the sender's
// capture ledger: a slot the SFU filtered (layer selection) counts as
// Skipped (an intentional frame-rate reduction, the viewer sees a clean
// repeat), a forwarded-but-missing slot as Dropped, and decode-order
// dependencies are enforced as in the point-to-point session. SSIM is the
// sender's encoded quality for displayed frames and the chained repeat
// penalty for gaps.
func (r *Receiver) Records(sender []metrics.FrameRecord) []metrics.FrameRecord {
	recs := make([]*metrics.FrameRecord, 0, len(sender))
	for _, srec := range sender {
		out := &metrics.FrameRecord{
			Index:         srec.Index,
			CaptureTS:     srec.CaptureTS,
			Keyframe:      srec.Keyframe,
			TemporalLayer: srec.TemporalLayer,
			Bytes:         srec.Bytes,
			QP:            srec.QP,
			SSIM:          srec.SSIM,
		}
		switch {
		case srec.Outcome == metrics.Skipped:
			out.Outcome = metrics.Skipped
			out.Bytes = 0
		case !r.sentFrames[uint32(srec.Index)]:
			// Filtered by layer selection (or the sender's own packets
			// never reached the SFU): no bytes spent on this receiver.
			out.Outcome = metrics.Skipped
			out.Bytes = 0
		default:
			if fi, ok := r.ledger[srec.Index]; ok && fi.rec.Arrival > 0 {
				out.Outcome = metrics.Delivered
				out.Arrival = fi.rec.Arrival
				out.DisplayAt = fi.rec.DisplayAt
			} else {
				out.Outcome = metrics.Dropped
			}
		}
		recs = append(recs, out)
	}
	metrics.EnforceDecodeOrder(recs, r.jbuf.LatenessBudget)
	// Chain display quality through gaps, as the session does.
	last := 1.0
	out := make([]metrics.FrameRecord, 0, len(recs))
	for _, rec := range recs {
		switch rec.Outcome {
		case metrics.Delivered:
			last = rec.SSIM
		default:
			rec.SSIM = codec.SkipSSIM(last, 0.2)
			last = rec.SSIM
		}
		out = append(out, *rec)
	}
	return out
}

// Name returns the receiver's label.
func (r *Receiver) Name() string { return r.cfg.Name }

func (r *Receiver) requestPLI() {
	if r.sched.Now()-r.lastPLI < 500*time.Millisecond {
		return
	}
	r.lastPLI = r.sched.Now()
	r.pliArmed = true
}

// takePLI drains the armed keyframe request.
func (r *Receiver) takePLI() bool {
	v := r.pliArmed
	r.pliArmed = false
	return v
}

// feedbackTick runs the downlink feedback loop at the SFU: the receiver's
// report is consumed locally (the SFU is the "sender" on the downlink).
func (r *Receiver) feedbackTick() {
	rep := r.recorder.Flush(r.sched.Now())
	// The report travels back over the (uncongested) control path; a
	// propagation delay would only smooth the estimator further, so the
	// SFU consumes it directly.
	results := r.history.OnReport(rep)
	r.est.OnPacketResults(r.sched.Now(), results)
	// The report never left this receiver, so its arrival buffer can go
	// straight back to the recorder.
	r.recorder.Recycle(rep)
}
