package sfu

import (
	"testing"
	"time"

	"rtcadapt/internal/codec"
	"rtcadapt/internal/core"
	"rtcadapt/internal/metrics"
	"rtcadapt/internal/netem"
	"rtcadapt/internal/session"
	"rtcadapt/internal/simtime"
	"rtcadapt/internal/trace"
	"rtcadapt/internal/units"
	"rtcadapt/internal/video"
)

// buildCall wires a one-sender, two-receiver SFU call: a strong receiver
// (3 Mbps downlink) and a weak one (weakRate).
func buildCall(t *testing.T, layerSelection bool, weakRate units.BitsPerSec, dur time.Duration) (
	sender *session.Session, node *Node, strong, weak *Receiver, run func()) {
	t.Helper()
	sched := simtime.NewScheduler()
	uplink := netem.NewLink(sched, netem.Config{Trace: trace.Constant(2.5e6), Seed: 1})
	sender = session.New(sched, session.Config{
		Duration:    dur,
		Seed:        1,
		Content:     video.TalkingHead,
		ForwardLink: uplink,
		InitialRate: 1e6,
		Controller:  core.NewResetOnly(),
		Encoder:     encoderWithLayers(),
	})
	node = NewNode(sched, sender, 0)
	node.LayerSelection = layerSelection
	uplink.SetReceiver(node)

	strongLink := netem.NewLink(sched, netem.Config{Trace: trace.Constant(3e6), Seed: 2})
	weakLink := netem.NewLink(sched, netem.Config{Trace: trace.Constant(weakRate), Seed: 3})
	strong = NewReceiver(sched, node, ReceiverConfig{Name: "strong", Downlink: strongLink})
	weak = NewReceiver(sched, node, ReceiverConfig{Name: "weak", Downlink: weakLink})
	run = func() { sched.RunUntil(dur + 2*time.Second) }
	return
}

func encoderWithLayers() codec.Config {
	return codec.Config{TemporalLayers: 2}
}

func TestSFUForwardsToAllReceivers(t *testing.T) {
	sender, node, strong, weak, run := buildCall(t, false, 3e6, 15*time.Second)
	run()
	ledger := sender.CaptureLedger()
	if len(ledger) < 440 {
		t.Fatalf("sender captured %d frames", len(ledger))
	}
	if node.Forwarded() == 0 {
		t.Fatal("SFU forwarded nothing")
	}
	for _, r := range []*Receiver{strong, weak} {
		recs := r.Records(ledger)
		rep := metrics.SummarizeAll(recs, 33*time.Millisecond)
		frac := float64(rep.DeliveredFrames) / float64(rep.Frames)
		if frac < 0.95 {
			t.Errorf("%s delivered %.3f with ample downlinks", r.Name(), frac)
		}
	}
}

func TestSFULayerSelectionProtectsWeakReceiver(t *testing.T) {
	const weakRate = 1.5e6 // fits TL0-only (~60% of sender rate), not the full stream
	analyze := func(layerSel bool) (weakP95 time.Duration, weakDelivered, filtered int, frames int) {
		sender, node, _, weak, run := buildCall(t, layerSel, weakRate, 20*time.Second)
		run()
		recs := weak.Records(sender.CaptureLedger())
		rep := metrics.SummarizeAll(recs, 33*time.Millisecond)
		return rep.P95NetDelay, rep.DeliveredFrames, node.Filtered(), rep.Frames
	}

	offP95, offDel, offFiltered, frames := analyze(false)
	onP95, onDel, onFiltered, _ := analyze(true)

	if offFiltered != 0 {
		t.Fatalf("filtering happened with LayerSelection off: %d", offFiltered)
	}
	if onFiltered == 0 {
		t.Fatal("LayerSelection on but nothing filtered for the weak downlink")
	}
	// Filtering halves the weak receiver's frame rate (delivered ~ half
	// the slots) but must slash its latency: without it the weak
	// downlink queues unboundedly.
	if onP95 >= offP95/2 {
		t.Errorf("layer selection P95 %v not far below unfiltered %v", onP95, offP95)
	}
	if onDel < frames/3 {
		t.Errorf("weak receiver delivered only %d/%d slots with filtering", onDel, frames)
	}
	_ = offDel
	t.Logf("weak receiver: off P95=%v del=%d | on P95=%v del=%d filtered=%d",
		offP95, offDel, onP95, onDel, onFiltered)
}

func TestSFUSenderFeedbackLoopWorks(t *testing.T) {
	// The sender's estimator is driven by SFU feedback: its rate must
	// ramp beyond the 1 Mbps seed on the 4 Mbps uplink.
	sender, _, _, _, run := buildCall(t, false, 3e6, 20*time.Second)
	run()
	ledger := sender.CaptureLedger()
	var lateBits float64
	for _, rec := range ledger {
		if rec.CaptureTS >= 15*time.Second {
			lateBits += float64(rec.Bytes * 8)
		}
	}
	lateRate := lateBits / 5
	if lateRate < 1.2e6 {
		t.Errorf("sender rate %.2f Mbps after 15 s; SFU feedback loop dead", lateRate/1e6)
	}
}

func TestSFUPLIPropagation(t *testing.T) {
	// Loss on a downlink must produce keyframes at the sender via
	// SFU-aggregated PLI.
	sched := simtime.NewScheduler()
	uplink := netem.NewLink(sched, netem.Config{Trace: trace.Constant(4e6), Seed: 1})
	sender := session.New(sched, session.Config{
		Duration:    15 * time.Second,
		Seed:        1,
		Content:     video.TalkingHead,
		ForwardLink: uplink,
		InitialRate: 1e6,
		Controller:  core.NewResetOnly(),
	})
	node := NewNode(sched, sender, 0)
	uplink.SetReceiver(node)
	lossy := netem.NewLink(sched, netem.Config{Trace: trace.Constant(3e6), LossProb: 0.03, Seed: 9})
	rcv := NewReceiver(sched, node, ReceiverConfig{Name: "lossy", Downlink: lossy})
	sched.RunUntil(17 * time.Second)

	ledger := sender.CaptureLedger()
	keyframes := 0
	for _, rec := range ledger {
		if rec.Keyframe {
			keyframes++
		}
	}
	if keyframes < 2 {
		t.Errorf("keyframes = %d; PLI did not propagate through the SFU", keyframes)
	}
	recs := rcv.Records(ledger)
	rep := metrics.SummarizeAll(recs, 33*time.Millisecond)
	if rep.DeliveredFrames == 0 {
		t.Error("lossy receiver delivered nothing")
	}
}
