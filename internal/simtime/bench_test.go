package simtime

import (
	"testing"
	"time"
)

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%100)*time.Microsecond, func() {})
		if i%64 == 0 {
			for s.Step() {
			}
		}
	}
	s.Run()
}

// BenchmarkSchedulerStep measures the pooled, closure-free steady state:
// one Step pops an event whose callback reschedules itself through the
// AfterArg path. This is the inner loop of every simulation; it must stay
// at 0 B/op (see TestSchedulerStepZeroAlloc).
func BenchmarkSchedulerStep(b *testing.B) {
	s := NewScheduler()
	s.AfterArg(0, stepBenchFn, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkTicker(b *testing.B) {
	s := NewScheduler()
	n := 0
	s.Tick(time.Millisecond, func() { n++ })
	b.ResetTimer()
	s.RunUntil(time.Duration(b.N) * time.Millisecond)
}
