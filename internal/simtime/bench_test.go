package simtime

import (
	"testing"
	"time"
)

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%100)*time.Microsecond, func() {})
		if i%64 == 0 {
			for s.Step() {
			}
		}
	}
	s.Run()
}

func BenchmarkTicker(b *testing.B) {
	s := NewScheduler()
	n := 0
	s.Tick(time.Millisecond, func() { n++ })
	b.ResetTimer()
	s.RunUntil(time.Duration(b.N) * time.Millisecond)
}
