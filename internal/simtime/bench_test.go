package simtime

import (
	"testing"
	"time"
)

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%100)*time.Microsecond, func() {})
		if i%64 == 0 {
			for s.Step() {
			}
		}
	}
	s.Run()
}

// BenchmarkSchedulerStep measures the pooled, closure-free steady state:
// one Step pops an event whose callback reschedules itself through the
// AfterArg path. This is the inner loop of every simulation; it must stay
// at 0 B/op (see TestSchedulerStepZeroAlloc).
func BenchmarkSchedulerStep(b *testing.B) {
	s := NewScheduler()
	s.AfterArg(0, stepBenchFn, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkTicker(b *testing.B) {
	s := NewScheduler()
	n := 0
	s.Tick(time.Millisecond, func() { n++ })
	b.ResetTimer()
	s.RunUntil(time.Duration(b.N) * time.Millisecond)
}

// mixedHorizons spans every wheel level: level 0 (sub-2ms), level 1
// (sub-537ms), level 2 (sub-137s), and a deadline deep enough to cascade
// through level 3 territory. A standing population re-arming over this mix
// keeps cascade and re-placement machinery on the measured path, which is
// exactly the regime where a binary heap pays O(log n) per operation.
var mixedHorizons = [8]time.Duration{
	50 * time.Microsecond,
	300 * time.Microsecond,
	2 * time.Millisecond,
	20 * time.Millisecond,
	150 * time.Millisecond,
	time.Second,
	10 * time.Second,
	80 * time.Second,
}

// mixedChurner is the closure-free state for mixedChurnFn; one per
// standing event so the population never shrinks. rng is a per-churner
// LCG so deadlines de-synchronize — real timer populations (pacing
// intervals, RTT-jittered feedback, retransmit deadlines) spread across
// ticks rather than expiring in lockstep cohorts.
type mixedChurner struct {
	s   *Scheduler
	rng uint32
}

// mixedDelay draws the next re-arm horizon: one of the mixedHorizons
// classes plus up to ~8 ms of jitter, from the churner's deterministic
// LCG stream.
func (c *mixedChurner) mixedDelay() time.Duration {
	c.rng = c.rng*1664525 + 1013904223
	return mixedHorizons[c.rng>>13&7] + time.Duration(c.rng&8191)*time.Microsecond
}

func mixedChurnFn(a any) {
	c := a.(*mixedChurner)
	c.s.AfterArg(c.mixedDelay(), mixedChurnFn, a)
}

// benchSchedulerMixedHorizon measures Step with a large standing queue of
// self-rearming events whose deadlines span all wheel levels. This is the
// head-to-head the timer wheel exists for: the heap sifts O(log n) on
// every push and pop, the wheel does O(1) placement plus amortized
// cascades.
func benchSchedulerMixedHorizon(b *testing.B, impl Impl) {
	s := NewSchedulerWith(Config{Impl: impl})
	const standing = 1 << 14
	churners := make([]mixedChurner, standing)
	for i := range churners {
		churners[i] = mixedChurner{s: s, rng: uint32(i)}
		s.AfterArg(churners[i].mixedDelay(), mixedChurnFn, &churners[i])
	}
	for i := 0; i < standing; i++ { // reach placement and pool steady state
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSchedulerMixedHorizon(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchSchedulerMixedHorizon(b, ImplWheel) })
	b.Run("heap", func(b *testing.B) { benchSchedulerMixedHorizon(b, ImplHeap) })
}

func cancelBenchNoop(any) {}

// benchSchedulerCancel measures the cancel-and-replace pattern that
// retransmit timers and pacer deadline updates hit constantly: cancel a
// pending event from deep inside the queue, then schedule a fresh one.
// The wheel unlinks in O(1); the heap does an interior sift.
func benchSchedulerCancel(b *testing.B, impl Impl) {
	s := NewSchedulerWith(Config{Impl: impl})
	const ring = 1 << 12
	evs := make([]Event, ring)
	for i := range evs {
		evs[i] = s.AtArg(s.Now()+mixedHorizons[i&7], cancelBenchNoop, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (ring - 1)
		evs[j].Cancel()
		evs[j] = s.AtArg(s.Now()+mixedHorizons[i&7], cancelBenchNoop, nil)
	}
}

func BenchmarkSchedulerCancel(b *testing.B) {
	b.Run("wheel", func(b *testing.B) { benchSchedulerCancel(b, ImplWheel) })
	b.Run("heap", func(b *testing.B) { benchSchedulerCancel(b, ImplHeap) })
}
