package simtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Differential harness: the wheel and the heap must fire the exact same
// (at, seq)-ordered event sequence for any workload. These tests drive
// both implementations through identical op streams and compare the
// resulting fire logs byte for byte; FuzzSchedulerEquivalence feeds the
// same interpreter with fuzzer-chosen bytes.

// fireLog records one callback invocation: which scheduled op fired and
// what the clock read.
type fireLog struct {
	tag int
	now time.Duration
}

// opRunner interprets a byte stream as scheduler operations and returns
// the complete fire log. Each op consumes two bytes (opcode, operand).
// Horizons stretch exponentially with the operand so streams exercise
// every wheel level and the overflow heap, not just the first window.
func opRunner(s *Scheduler, ops []byte) []fireLog {
	var log []fireLog
	var pending []Event
	tag := 0
	for i := 0; i+1 < len(ops); i += 2 {
		op, val := ops[i], ops[i+1]
		switch op % 8 {
		case 0, 1, 2: // schedule: horizons from ~1 µs to far past the top window
			d := time.Duration(val%16+1) * time.Microsecond << (val % 34)
			k := tag
			pending = append(pending, s.At(s.Now()+d, func() {
				log = append(log, fireLog{tag: k, now: s.Now()})
			}))
			tag++
		case 3: // schedule a same-instant burst (FIFO tie-break coverage)
			at := s.Now() + time.Duration(val)*time.Millisecond
			for j := 0; j < 3; j++ {
				k := tag
				pending = append(pending, s.At(at, func() {
					log = append(log, fireLog{tag: k, now: s.Now()})
				}))
				tag++
			}
		case 4: // cancel an arbitrary handle (stale ones are no-ops)
			if len(pending) > 0 {
				pending[int(val)%len(pending)].Cancel()
			}
		case 5: // fire one event
			s.Step()
		case 6: // run a bounded stretch of virtual time
			s.RunUntil(s.Now() + time.Duration(val)*33*time.Microsecond)
		case 7: // reset, rarely: it wipes the queue, which would make
			// most streams trivial if it were as likely as scheduling
			if val == 0 {
				s.Reset()
			} else {
				s.Step()
			}
		}
	}
	s.Run()
	return log
}

// diffImpls runs the op stream on both implementations and reports the
// first divergence, if any.
func diffImpls(t *testing.T, ops []byte) {
	t.Helper()
	wheelSched := NewSchedulerWith(Config{Impl: ImplWheel})
	heapSched := NewSchedulerWith(Config{Impl: ImplHeap})
	gotW := opRunner(wheelSched, ops)
	gotH := opRunner(heapSched, ops)
	if len(gotW) != len(gotH) {
		t.Fatalf("wheel fired %d events, heap fired %d", len(gotW), len(gotH))
	}
	for i := range gotW {
		if gotW[i] != gotH[i] {
			t.Fatalf("fire %d diverges: wheel {tag %d at %v}, heap {tag %d at %v}",
				i, gotW[i].tag, gotW[i].now, gotH[i].tag, gotH[i].now)
		}
	}
	if wheelSched.Now() != heapSched.Now() {
		t.Fatalf("final clocks diverge: wheel %v, heap %v", wheelSched.Now(), heapSched.Now())
	}
	if wheelSched.Len() != heapSched.Len() {
		t.Fatalf("final Len diverges: wheel %d, heap %d", wheelSched.Len(), heapSched.Len())
	}
}

// TestWheelMatchesHeapRandomOps drives both implementations through
// seeded random op streams. This is the cheap always-on cousin of
// FuzzSchedulerEquivalence.
func TestWheelMatchesHeapRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := make([]byte, 400)
			for i := range ops {
				ops[i] = byte(rng.Intn(256))
			}
			diffImpls(t, ops)
		})
	}
}

// TestSchedulerBehaviorBothImpls re-pins the core scheduler contract on
// each implementation by name, so a wheel-only regression fails with a
// subtest name that says so.
func TestSchedulerBehaviorBothImpls(t *testing.T) {
	for _, impl := range []Impl{ImplWheel, ImplHeap} {
		t.Run(impl.String(), func(t *testing.T) {
			s := NewSchedulerWith(Config{Impl: impl})
			if s.Impl() != impl {
				t.Fatalf("Impl() = %v, want %v", s.Impl(), impl)
			}
			var got []int
			s.At(30*time.Millisecond, func() { got = append(got, 3) })
			s.At(10*time.Millisecond, func() { got = append(got, 1) })
			ev := s.At(25*time.Millisecond, func() { got = append(got, 9) })
			s.At(20*time.Millisecond, func() { got = append(got, 2) })
			for i := 0; i < 4; i++ {
				i := i
				s.At(40*time.Millisecond, func() { got = append(got, 10+i) })
			}
			if !ev.Cancel() {
				t.Fatal("Cancel returned false on a pending event")
			}
			if s.Len() != 7 {
				t.Fatalf("Len = %d after cancel, want 7", s.Len())
			}
			s.Run()
			want := []int{1, 2, 3, 10, 11, 12, 13}
			if len(got) != len(want) {
				t.Fatalf("fired %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fired %v, want %v", got, want)
				}
			}
			s.Reset()
			if s.Now() != 0 || s.Len() != 0 {
				t.Fatalf("after Reset: Now=%v Len=%d, want zeros", s.Now(), s.Len())
			}
		})
	}
}
