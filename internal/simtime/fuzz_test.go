package simtime

import "testing"

// FuzzSchedulerEquivalence feeds fuzzer-chosen op streams through both
// queue implementations and fails on any divergence in fire order, fire
// times, final clock, or final queue length. The wheel's correctness
// argument (placement invariant, cascade, exact in-slot ordering) is
// structural; this is the mechanical check that no workload shape — near
// and far horizons, same-instant bursts, cancels, resets — can tell the
// two implementations apart.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 255, 5, 0})
	// One of everything: near + far schedules, a tie burst, a cancel, a
	// step, a stretch of idle time, and a reset.
	f.Add([]byte{0, 3, 1, 200, 3, 40, 4, 1, 5, 0, 6, 90, 7, 0, 0, 7})
	// Far-horizon heavy: operands with high shift bits push events to the
	// top level and the overflow heap, then drain.
	f.Add([]byte{0, 225, 1, 193, 2, 161, 0, 255, 6, 255, 5, 0, 5, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 2048 {
			ops = ops[:2048] // bound per-exec work; coverage, not volume
		}
		diffImpls(t, ops)
	})
}
