package simtime

// eventHeap is a binary min-heap of event records ordered by (at, seq).
// It backs the ImplHeap scheduler queue and the timer wheel's overflow
// bucket. Each queued record's index field mirrors its position in the
// heap array so Cancel can remove interior elements in O(log n).
type eventHeap []*event

// less orders the heap by deadline, then scheduling order. seq is unique
// per event, so the order is total and pop order never depends on the
// heap's internal array layout.
func (h eventHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// push appends ev and restores the heap property.
func (h *eventHeap) push(ev *event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.siftUp(ev.index)
}

// popMin removes and returns the heap minimum.
func (h *eventHeap) popMin() *event {
	q := *h
	ev := q[0]
	n := len(q) - 1
	q.swap(0, n)
	q[n] = nil
	*h = q[:n]
	if n > 0 {
		h.siftDown(0)
	}
	ev.index = -1
	return ev
}

// removeAt removes the event at heap index i (used by Cancel).
func (h *eventHeap) removeAt(i int) {
	q := *h
	n := len(q) - 1
	removed := q[i]
	if i != n {
		q.swap(i, n)
	}
	q[n] = nil
	*h = q[:n]
	if i < n {
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	removed.index = -1
}

// siftUp restores the heap property from i toward the root.
func (h *eventHeap) siftUp(i int) {
	q := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property from i toward the leaves, reporting
// whether the element moved.
func (h *eventHeap) siftDown(i int) bool {
	q := *h
	start := i
	n := len(q)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q.swap(i, child)
		i = child
	}
	return i > start
}
