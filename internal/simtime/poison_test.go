package simtime

import (
	"testing"
	"time"
)

// Pool-poisoning protocol (ISSUE 7): fill every field of a recycled
// object with sentinel bytes, then exercise the normal acquire path and
// assert no sentinel is observable afterwards. A sentinel that leaks
// means some Get/reset path skipped a field — the class of bug that
// shows up as one session's state bleeding into the next on a reused
// fleet shard.

// freeList walks the scheduler's free chain and returns its records in
// pop order (test helper; the free list is an intrusive id chain through
// the arena, not a slice).
func freeList(s *Scheduler) []*event {
	var out []*event
	for id := s.freeHead; id != 0; {
		ev := s.evAt(id)
		out = append(out, ev)
		id = ev.next
	}
	return out
}

// poisonFreeEvents overwrites every field of every free-list record with
// sentinels. The fn/argFn sentinels fail the test if they ever run: a
// record whose stale closure survives into a new tenant's dispatch is
// the worst version of this bug (Step calls fn when non-nil, so a stale
// fn would shadow a new AtArg tenant entirely). The level/slot/prev
// sentinels cover the wheel: a recycled record must be fully re-placed
// (level, slot, links) before it lands in a slot list, or the splice
// logic would corrupt a list it was never on. id, gen, and the next
// free-chain link are the only fields a free record legitimately owns.
func poisonFreeEvents(t *testing.T, s *Scheduler) int {
	t.Helper()
	const poisonDur = time.Duration(0x5EA5_5EA5_5EA5)
	free := freeList(s)
	for _, ev := range free {
		ev.at = poisonDur
		ev.seq = 0xA5A5_A5A5_A5A5_A5A5
		ev.fn = func() { t.Error("poisoned fn leaked into dispatch") }
		ev.argFn = func(any) { t.Error("poisoned argFn leaked into dispatch") }
		ev.arg = "poison"
		ev.canceledGen = 0xA5A5
		ev.level = 0x5A
		ev.slot = 0xA5A5
		ev.prev = 0x5A5A5A5
	}
	return len(free)
}

// TestPoisonedPoolRecordsDoNotLeak pins that schedule() fully
// initializes a recycled record: a workload on a poisoned pool must be
// indistinguishable from the same workload on a fresh scheduler.
func TestPoisonedPoolRecordsDoNotLeak(t *testing.T) {
	workload := func(s *Scheduler) []time.Duration {
		var fired []time.Duration
		s.AtArg(2*time.Millisecond, func(any) { fired = append(fired, s.Now()) }, nil)
		s.At(time.Millisecond, func() { fired = append(fired, s.Now()) })
		s.After(3*time.Millisecond, func() { fired = append(fired, s.Now()) })
		s.Run()
		return fired
	}

	s := NewScheduler()
	for i := 0; i < 8; i++ { // populate the free list
		s.After(time.Duration(i+1)*time.Microsecond, func() {})
	}
	s.Run()
	s.Reset()
	if n := poisonFreeEvents(t, s); n < 1 {
		t.Fatal("free list empty; poisoning exercised nothing")
	}

	got := workload(s)
	want := workload(NewScheduler())
	if len(got) != len(want) {
		t.Fatalf("poisoned pool fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("firing %d at %v on poisoned pool, %v on fresh", i, got[i], want[i])
		}
	}
}

// TestReleaseClearsPayloadFields pins the release side of the contract:
// records returned to the free list hold no callback, argument, or
// argument-callback reference (they would pin arbitrary object graphs
// for the pool's lifetime).
func TestReleaseClearsPayloadFields(t *testing.T) {
	s := NewScheduler()
	s.At(time.Millisecond, func() {})
	s.AtArg(2*time.Millisecond, func(any) {}, "payload")
	s.At(time.Hour, func() {}).Cancel()
	s.Run()
	free := freeList(s)
	if len(free) == 0 {
		t.Fatal("free list empty after run")
	}
	for i, ev := range free {
		if ev.fn != nil || ev.argFn != nil || ev.arg != nil {
			t.Errorf("free record %d retains payload: fn=%v argFn=%v arg=%v",
				i, ev.fn != nil, ev.argFn != nil, ev.arg)
		}
		if ev.index != -1 {
			t.Errorf("free record %d still claims heap index %d", i, ev.index)
		}
		if ev.prev != 0 {
			t.Errorf("free record %d retains slot link prev=%d", i, ev.prev)
		}
	}
}
