package simtime

import (
	"runtime"
	"testing"
	"time"
)

// TestCancelReleasesPayload pins the satellite bugfix: canceling an event
// must drop the callback (and everything it captures) immediately, not at
// the event's deadline. The canceled record's fn is nil and a finalizer on
// the captured payload observes collection while the deadline is still far
// in the future.
func TestCancelReleasesPayload(t *testing.T) {
	s := NewScheduler()
	collected := make(chan struct{})
	ev := func() Event {
		payload := make([]byte, 1<<20)
		runtime.SetFinalizer(&payload[0], func(*byte) { close(collected) })
		return s.At(time.Hour, func() { _ = payload[0] })
	}()
	if !ev.Cancel() {
		t.Fatal("Cancel returned false on a pending event")
	}
	if ev.ev.fn != nil {
		t.Error("canceled event still holds its callback closure")
	}
	if ev.ev.arg != nil {
		t.Error("canceled event still holds its arg")
	}
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
		}
	}
	t.Error("canceled event's captured payload was never collected")
}

// TestCancelTightensLen pins the eager-drop accounting: Cancel removes the
// event from the queue immediately, so Len is exact, not an upper bound.
func TestCancelTightensLen(t *testing.T) {
	s := NewScheduler()
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = s.At(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	// Cancel out of order to exercise interior heap removal.
	for i, idx := range []int{5, 0, 9, 3, 7} {
		if !evs[idx].Cancel() {
			t.Fatalf("Cancel #%d returned false", idx)
		}
		if got, want := s.Len(), 10-(i+1); got != want {
			t.Errorf("Len after %d cancels = %d, want %d", i+1, got, want)
		}
	}
	fired := 0
	for s.Step() {
		fired++
	}
	if fired != 5 {
		t.Errorf("fired %d events, want 5", fired)
	}
}

// TestStaleHandleAfterReuse pins the generation counters: once an event
// fires and its pooled record is recycled for a new event, the old handle
// must not cancel the new tenant.
func TestStaleHandleAfterReuse(t *testing.T) {
	s := NewScheduler()
	first := s.At(time.Millisecond, func() {})
	s.Run()
	if first.Pending() {
		t.Error("fired event still Pending")
	}
	if first.Cancel() {
		t.Error("Cancel succeeded on a fired event")
	}
	second := s.At(2*time.Millisecond, func() {})
	if second.ev != first.ev {
		t.Fatalf("pool did not recycle the record (test needs the shared-record case)")
	}
	if first.Cancel() {
		t.Error("stale handle canceled the record's new tenant")
	}
	if !second.Pending() {
		t.Error("new event lost its pending state to a stale handle")
	}
	if !second.Cancel() {
		t.Error("current handle failed to cancel its own event")
	}
}

// TestZeroValueEventHandle pins that the zero handle is inert.
func TestZeroValueEventHandle(t *testing.T) {
	var ev Event
	if ev.Pending() || ev.Cancel() || ev.Canceled() {
		t.Error("zero-value Event handle is not inert")
	}
	if ev.At() != 0 {
		t.Errorf("zero-value At() = %v, want 0", ev.At())
	}
}

// TestAtArgDispatch pins the closure-free dispatch path end to end,
// including FIFO interleaving with closure events at the same instant.
func TestAtArgDispatch(t *testing.T) {
	s := NewScheduler()
	var got []int
	rec := &got
	s.AtArg(5*time.Millisecond, func(a any) { p := a.(*[]int); *p = append(*p, 1) }, rec)
	s.At(5*time.Millisecond, func() { got = append(got, 2) })
	s.AfterArg(5*time.Millisecond, func(a any) { p := a.(*[]int); *p = append(*p, 3) }, rec)
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestAtArgNilCallbackPanics mirrors the At nil-callback contract.
func TestAtArgNilCallbackPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("nil AtArg callback did not panic")
		}
	}()
	s.AtArg(time.Millisecond, nil, nil)
}

// TestPoolRecycling pins steady-state pool behavior: a schedule/fire churn
// far longer than the peak queue depth must not grow the record population
// beyond that peak (i.e. records genuinely recycle).
func TestPoolRecycling(t *testing.T) {
	s := NewScheduler()
	const depth = 8
	for i := 0; i < depth; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	for i := 0; i < 10_000; i++ {
		s.Step()
		s.After(time.Microsecond, func() {})
	}
	s.Run()
	if got := s.minted; got > depth+1 {
		t.Errorf("pool minted %d records after churn at depth %d; records are not recycling", got, depth)
	}
}

// stepBenchFn reschedules itself through the arg path; used by both the
// zero-alloc gate and BenchmarkSchedulerStep.
func stepBenchFn(a any) {
	s := a.(*Scheduler)
	s.AfterArg(100*time.Microsecond, stepBenchFn, a)
}

// TestSchedulerStepZeroAlloc is the alloc-budget gate for the scheduler
// hot path.
//
// Budget: 0 allocs/op. One Step pops a pooled record, dispatches through
// func(any), and the self-rescheduling callback acquires the record right
// back — nothing on that cycle may touch the heap allocator. If a future
// change needs an allocation here it is paying that cost on every simulated
// event across every experiment; raise this budget only with a benchmark
// showing the regression is bought back elsewhere.
func TestSchedulerStepZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	for _, impl := range []Impl{ImplWheel, ImplHeap} {
		t.Run(impl.String(), func(t *testing.T) {
			s := NewSchedulerWith(Config{Impl: impl})
			s.AfterArg(0, stepBenchFn, s)
			for i := 0; i < 1024; i++ { // warm the pool and queue arrays
				s.Step()
			}
			allocs := testing.AllocsPerRun(1000, func() { s.Step() })
			if allocs != 0 {
				t.Errorf("%v Scheduler.Step allocates %.1f/op in steady state, budget is 0", impl, allocs)
			}
		})
	}
}
