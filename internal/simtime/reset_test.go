package simtime

import (
	"testing"
	"time"
)

// TestResetRestartsCleanly pins the fleet reuse contract: after Reset, a
// scheduler behaves exactly like a freshly constructed one — clock at
// zero, queue empty, sequence counter restarted — so a workload run on a
// recycled scheduler is indistinguishable from one run on a new
// scheduler.
func TestResetRestartsCleanly(t *testing.T) {
	workload := func(s *Scheduler) []time.Duration {
		var fired []time.Duration
		s.At(3*time.Millisecond, func() { fired = append(fired, s.Now()) })
		s.At(time.Millisecond, func() {
			fired = append(fired, s.Now())
			s.After(time.Millisecond, func() { fired = append(fired, s.Now()) })
		})
		s.Run()
		return fired
	}

	reused := NewScheduler()
	// Dirty the scheduler: advance the clock, burn sequence numbers,
	// leave pending events and a Stop in effect.
	reused.At(time.Millisecond, func() {})
	reused.At(2*time.Millisecond, func() { reused.Stop() })
	reused.At(time.Hour, func() { t.Error("leftover event fired after Reset") })
	reused.Run()
	reused.Reset()

	if reused.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", reused.Now())
	}
	if reused.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", reused.Len())
	}

	got := workload(reused)
	want := workload(NewScheduler())
	if len(got) != len(want) {
		t.Fatalf("reused scheduler fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("firing %d at %v on reused scheduler, %v on fresh", i, got[i], want[i])
		}
	}
}

// TestResetKeepsPoolWarm pins the reason Reset exists at all (versus
// constructing a new scheduler per fleet session): the event records of
// the abandoned queue return to the free list instead of being dropped
// for the collector.
func TestResetKeepsPoolWarm(t *testing.T) {
	s := NewScheduler()
	const depth = 16
	for i := 0; i < depth; i++ {
		s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	s.Reset()
	if got := len(freeList(s)); got < depth {
		t.Errorf("pool holds %d records after Reset, want >= %d (queue must recycle, not leak)", got, depth)
	}
	// Stale handles into the pre-Reset world must be inert.
	ev := s.At(time.Millisecond, func() {})
	s.Reset()
	if ev.Cancel() {
		t.Error("stale handle canceled into a Reset scheduler")
	}
	if ev.Pending() {
		t.Error("stale handle still Pending after Reset")
	}
}
