// Package simtime provides a deterministic discrete-event scheduler with a
// virtual clock. Every component of the simulator runs on virtual time, so a
// whole end-to-end session is a pure function of its configuration and seeds.
//
// The zero value of Scheduler is ready to use. Events scheduled for the same
// instant fire in scheduling order (FIFO), which keeps runs reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock exposes the current virtual time. Components that only need to read
// time should accept a Clock rather than a *Scheduler.
type Clock interface {
	// Now returns the current virtual time, measured from the start of the
	// simulation.
	Now() time.Duration
}

// Event is a handle to a scheduled callback. It can be used to cancel the
// callback before it fires.
type Event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing. Canceling an event that already
// fired or was already canceled is a no-op. Cancel reports whether the event
// was still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.index == -1 {
		return false
	}
	e.canceled = true
	return true
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; simulations are single-goroutine by design.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending (non-canceled) events. Canceled events
// still occupy queue slots until their deadline passes, so Len is an upper
// bound immediately after cancellations.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulation bug, and silently reordering
// events would destroy determinism.
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past (now=%v, at=%v)", s.now, t))
	}
	ev := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// deadline. It reports whether an event fired; false means the queue is
// empty (or everything left was canceled).
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.canceled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Peek returns the deadline of the earliest pending event and true, or zero
// and false if none is pending.
func (s *Scheduler) Peek() (time.Duration, bool) {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0].at, true
	}
	return 0, false
}

// RunUntil fires events in order until the queue is exhausted or the next
// event lies strictly beyond t, then advances the clock to exactly t.
func (s *Scheduler) RunUntil(t time.Duration) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: RunUntil into the past (now=%v, until=%v)", s.now, t))
	}
	for {
		next, ok := s.Peek()
		if !ok || next > t {
			break
		}
		s.Step()
		if s.stopped {
			break
		}
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	for !s.stopped && s.Step() {
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Ticker schedules fn every interval, starting at now+interval, until
// canceled via the returned handle or until the scheduler stops.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	ev       *Event
	stopped  bool
}

// Tick creates and starts a Ticker. interval must be positive.
func (s *Scheduler) Tick(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("simtime: Tick with non-positive interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.s.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. It is safe to call multiple times and from
// within the tick callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
