// Package simtime provides a deterministic discrete-event scheduler with a
// virtual clock. Every component of the simulator runs on virtual time, so a
// whole end-to-end session is a pure function of its configuration and seeds.
//
// The zero value of Scheduler is ready to use. Events scheduled for the same
// instant fire in scheduling order (FIFO), which keeps runs reproducible.
//
// # Queue implementations
//
// Two interchangeable queue implementations exist behind Config.Impl: a
// hierarchical timer wheel (ImplWheel, the default — see wheel.go) and a
// binary min-heap (ImplHeap, the original). Both fire the exact same
// (at, seq)-ordered event sequence; the choice only changes host-CPU work
// per event, never virtual-time ordering. The heap stays alive for
// differential testing (TestWheelMatchesHeap, FuzzSchedulerEquivalence)
// and as a fallback for pathological far-horizon workloads.
//
// # Allocation model
//
// The scheduler is allocation-free in steady state. Fired and canceled
// events return to a per-scheduler free list and are recycled by later At
// and After calls; the wheel's slot arrays (or the heap's backing array)
// are reused across the whole run. Handles stay safe across recycling
// through generation counters: every recycle bumps the record's generation,
// so a stale handle (its event already fired or canceled) simply stops
// matching and Cancel degrades to a no-op instead of corrupting an
// unrelated event.
//
// Callbacks come in two forms. At and After take a plain func(), which is
// what cold paths and tests want but allocates a closure whenever the
// callback captures variables. Hot paths that fire per packet should use
// AtArg and AfterArg instead: they take a func(any) plus the argument to
// call it with, so a package-level dispatch function and a pooled record
// replace the capturing closure and the per-call allocation disappears.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Clock exposes the current virtual time. Components that only need to read
// time should accept a Clock rather than a *Scheduler.
type Clock interface {
	// Now returns the current virtual time, measured from the start of the
	// simulation.
	Now() time.Duration
}

// Impl selects the scheduler's queue implementation.
type Impl uint8

const (
	// ImplWheel is the hierarchical timer wheel (default).
	ImplWheel Impl = iota
	// ImplHeap is the binary min-heap the wheel replaced; kept for
	// differential testing.
	ImplHeap
)

// String returns the implementation's canonical name.
func (im Impl) String() string {
	if im == ImplHeap {
		return "heap"
	}
	return "wheel"
}

// Config selects scheduler construction options. The zero value is the
// production configuration.
type Config struct {
	// Impl selects the queue implementation; the zero value is ImplWheel.
	Impl Impl
}

// event is the pooled record behind an Event handle. Records are owned by
// one scheduler forever: they cycle between its queue and its free list and
// are never shared across schedulers, so pooling is invisible to parallel
// runs of independent schedulers.
type event struct {
	s     *Scheduler
	at    time.Duration
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any

	// index locates the record inside its container: the heap index
	// (ImplHeap or wheel overflow), or 0 as a queued marker for wheel
	// slot residents (their position is carried by the next/prev links).
	// index == -1 means not queued; Pending and the pool tests key on
	// that regardless of implementation.
	index int
	// level says which container the record is in: a wheel level 0..3,
	// locHeap, or locOver. Meaningless while index == -1.
	level int8
	// slot is the wheel slot number when level is a wheel level.
	slot uint16
	// id is the record's 1-based arena id, fixed at mint time. Wheel slot
	// lists and the free list link records by id rather than by pointer:
	// an int32 store takes no GC write barrier, where the pointer splices
	// this replaced were the hottest barrier site in fleet profiles.
	id int32
	// next and prev thread the record into its wheel slot's intrusive
	// doubly-linked list as arena ids (0 = none); next also chains the
	// free list.
	next int32
	prev int32

	// gen is the record's live generation; it increments every time the
	// record is released back to the free list, invalidating outstanding
	// handles.
	gen uint64
	// canceledGen remembers the generation whose life ended via Cancel
	// (zero = none yet), so a handle can still answer Canceled after the
	// record was released but before it is reused.
	canceledGen uint64
}

// Event is a handle to a scheduled callback. It can be used to cancel the
// callback before it fires. The zero value is an inert handle: Cancel and
// Pending report false.
//
// Handles are generation-checked: once the event fires or is canceled, the
// underlying pooled record may be recycled for a new event, and the old
// handle stops matching. All methods are safe on stale handles.
type Event struct {
	ev  *event
	gen uint64
	at  time.Duration
}

// At reports the virtual time the event was scheduled for.
func (e Event) At() time.Duration { return e.at }

// Pending reports whether the event is still queued: not yet fired and not
// canceled.
func (e Event) Pending() bool {
	return e.ev != nil && e.ev.gen == e.gen && e.ev.index >= 0
}

// Cancel prevents the event from firing. The event is removed from the
// queue immediately — Len tightens right away and the callback (and
// everything it captures) is released for collection. Canceling an event
// that already fired or was already canceled is a no-op. Cancel reports
// whether the event was still pending.
func (e Event) Cancel() bool {
	if !e.Pending() {
		return false
	}
	ev := e.ev
	s := ev.s
	s.unqueue(ev)
	ev.canceledGen = ev.gen
	s.release(ev)
	return true
}

// Canceled reports whether Cancel ended this event's life. The answer is
// accurate until the scheduler recycles the underlying record for a new
// event, after which a stale handle reports false; query it promptly.
func (e Event) Canceled() bool {
	return e.ev != nil && e.ev.canceledGen == e.gen
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; simulations are single-goroutine by design.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	impl    Impl
	stopped bool
	queue   eventHeap // ImplHeap main queue
	// arena backs every event record the scheduler ever mints, in
	// fixed-size chunks so records keep stable addresses while ids stay
	// dense. minted counts records carved out so far; freeHead chains
	// recycled records by id through event.next (0 = empty).
	arena    [][]event
	minted   int
	freeHead int32
	wheel    wheel // ImplWheel main queue
}

// Arena geometry: 256 records per chunk keeps a chunk around 24 KB —
// big enough to amortize growth, small enough not to overshoot tiny runs.
const (
	chunkShift = 8
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// evAt resolves a 1-based record id. Callers check for 0 (none) first.
func (s *Scheduler) evAt(id int32) *event {
	i := int(id - 1)
	return &s.arena[i>>chunkShift][i&chunkMask]
}

// NewScheduler returns a wheel-backed scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// NewSchedulerWith returns a scheduler built from cfg with the clock at
// zero. NewSchedulerWith(Config{}) is equivalent to NewScheduler.
func NewSchedulerWith(cfg Config) *Scheduler { return &Scheduler{impl: cfg.Impl} }

// Impl reports which queue implementation the scheduler runs on.
func (s *Scheduler) Impl() Impl { return s.impl }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events. Canceled events leave the
// queue immediately, so the count is exact.
func (s *Scheduler) Len() int {
	if s.impl == ImplHeap {
		return len(s.queue)
	}
	return s.wheel.count
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulation bug, and silently reordering
// events would destroy determinism.
//
// fn allocates a closure when it captures variables; per-packet hot paths
// should use AtArg with a pooled record instead.
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute virtual time t. Passing a
// package-level function and a pooled pointer argument keeps the call
// allocation-free — the closure-capturing pattern At invites is the single
// biggest allocation source in a per-packet simulation. arg should be a
// pointer; non-pointer values are boxed into the any and allocate.
func (s *Scheduler) AtArg(t time.Duration, fn func(any), arg any) Event {
	if fn == nil {
		panic("simtime: AtArg called with nil callback")
	}
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now. Negative d is treated as
// zero. See AtArg for the allocation contract.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, fn, arg)
}

// schedule acquires a pooled record, fills it, and queues it.
func (s *Scheduler) schedule(t time.Duration, fn func(), argFn func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past (now=%v, at=%v)", s.now, t))
	}
	ev := s.acquire()
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	s.seq++
	if s.impl == ImplHeap {
		ev.level = locHeap
		s.queue.push(ev)
	} else {
		s.wheel.push(s, ev)
	}
	return Event{ev: ev, gen: ev.gen, at: t}
}

// acquire pops a record off the free list, or mints one from the arena.
func (s *Scheduler) acquire() *event {
	if id := s.freeHead; id != 0 {
		ev := s.evAt(id)
		s.freeHead = ev.next
		ev.next = 0
		return ev
	}
	if s.minted>>chunkShift == len(s.arena) {
		s.arena = append(s.arena, make([]event, chunkSize))
	}
	ev := &s.arena[s.minted>>chunkShift][s.minted&chunkMask]
	s.minted++
	ev.s = s
	ev.gen = 1
	ev.index = -1
	ev.id = int32(s.minted) // 1-based: id 0 means "none" in the links
	return ev
}

// release clears a record's payload so the callback and its captures are
// collectable, bumps the generation to invalidate outstanding handles, and
// pushes the record onto the free list (chained by id through next).
func (s *Scheduler) release(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.prev = 0
	ev.index = -1
	ev.gen++
	ev.next = s.freeHead
	s.freeHead = ev.id
}

// earliest returns the queued event with the minimal (at, seq), or nil.
func (s *Scheduler) earliest() *event {
	if s.impl == ImplHeap {
		if len(s.queue) == 0 {
			return nil
		}
		return s.queue[0]
	}
	return s.wheel.min(s)
}

// unqueue removes a queued event from whichever container holds it,
// without releasing the record.
func (s *Scheduler) unqueue(ev *event) {
	if ev.level == locHeap {
		s.queue.removeAt(ev.index)
		return
	}
	s.wheel.remove(s, ev)
}

// Reset returns the scheduler to its initial state — empty queue, clock at
// zero, sequence counter at zero, stop flag cleared — while keeping the
// event free list and the queue's backing arrays (heap array or wheel slot
// arrays). One scheduler can thereby be reused across many sequential
// simulation runs (the fleet's per-shard discipline) with its pools already
// warm: the first run pays the event allocations, every later run on the
// same scheduler is allocation-free in steady state.
//
// Pending events are canceled: their records are recycled and outstanding
// handles go stale (Pending reports false, Cancel is a no-op). Because seq
// restarts at zero, a Reset scheduler fires events in exactly the order a
// freshly constructed one would — Reset-reuse is invisible to the
// simulation running on it.
func (s *Scheduler) Reset() {
	if s.impl == ImplHeap {
		for _, ev := range s.queue {
			ev.canceledGen = ev.gen
			s.release(ev)
		}
		clear(s.queue)
		s.queue = s.queue[:0]
	} else {
		s.wheel.reset(s)
	}
	s.now = 0
	s.seq = 0
	s.stopped = false
}

// maxDeadline is the step limit that admits every representable deadline.
const maxDeadline = time.Duration(math.MaxInt64)

// step fires the earliest pending event if its deadline is at or before
// limit, advancing the clock to that deadline. It reports whether an event
// fired. The single queue search per fired event is what RunUntil rides
// on; the event's record is recycled before the callback runs, so a
// callback that schedules new events reuses it immediately.
func (s *Scheduler) step(limit time.Duration) bool {
	ev := s.earliest()
	if ev == nil || ev.at > limit {
		return false
	}
	s.unqueue(ev)
	if s.impl != ImplHeap {
		s.wheel.advance(s, wheelTick(ev.at))
	}
	s.now = ev.at
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	s.release(ev)
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	return true
}

// Step fires the earliest pending event, advancing the clock to its
// deadline. It reports whether an event fired; false means the queue is
// empty.
func (s *Scheduler) Step() bool { return s.step(maxDeadline) }

// Peek returns the deadline of the earliest pending event and true, or zero
// and false if none is pending.
func (s *Scheduler) Peek() (time.Duration, bool) {
	ev := s.earliest()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunUntil fires events in order until the queue is exhausted or the next
// event lies strictly beyond t, then advances the clock to exactly t.
func (s *Scheduler) RunUntil(t time.Duration) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: RunUntil into the past (now=%v, until=%v)", s.now, t))
	}
	for !s.stopped && s.step(t) {
	}
	if !s.stopped && s.now < t {
		s.now = t
		if s.impl != ImplHeap {
			s.wheel.advance(s, wheelTick(t))
		}
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	for !s.stopped && s.Step() {
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Ticker schedules fn every interval, starting at now+interval, until
// canceled via the returned handle or until the scheduler stops. Re-arming
// dispatches through a package-level function, so a running ticker never
// allocates per tick.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	ev       Event
	stopped  bool
}

// Tick creates and starts a Ticker. interval must be positive.
func (s *Scheduler) Tick(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("simtime: Tick with non-positive interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// tickerFire dispatches one tick and re-arms; the closure-free counterpart
// of the old capture-per-arm pattern.
func tickerFire(a any) {
	t := a.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.ev = t.s.AfterArg(t.interval, tickerFire, t)
}

// Stop cancels future ticks. It is safe to call multiple times and from
// within the tick callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
