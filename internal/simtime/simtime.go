// Package simtime provides a deterministic discrete-event scheduler with a
// virtual clock. Every component of the simulator runs on virtual time, so a
// whole end-to-end session is a pure function of its configuration and seeds.
//
// The zero value of Scheduler is ready to use. Events scheduled for the same
// instant fire in scheduling order (FIFO), which keeps runs reproducible.
//
// # Allocation model
//
// The scheduler is allocation-free in steady state. Fired and canceled
// events return to a per-scheduler free list and are recycled by later At
// and After calls; the binary-heap backing array is reused across the whole
// run. Handles stay safe across recycling through generation counters: every
// recycle bumps the record's generation, so a stale handle (its event
// already fired or canceled) simply stops matching and Cancel degrades to a
// no-op instead of corrupting an unrelated event.
//
// Callbacks come in two forms. At and After take a plain func(), which is
// what cold paths and tests want but allocates a closure whenever the
// callback captures variables. Hot paths that fire per packet should use
// AtArg and AfterArg instead: they take a func(any) plus the argument to
// call it with, so a package-level dispatch function and a pooled record
// replace the capturing closure and the per-call allocation disappears.
package simtime

import (
	"fmt"
	"time"
)

// Clock exposes the current virtual time. Components that only need to read
// time should accept a Clock rather than a *Scheduler.
type Clock interface {
	// Now returns the current virtual time, measured from the start of the
	// simulation.
	Now() time.Duration
}

// event is the pooled record behind an Event handle. Records are owned by
// one scheduler forever: they cycle between its heap and its free list and
// are never shared across schedulers, so pooling is invisible to parallel
// runs of independent schedulers.
type event struct {
	s     *Scheduler
	at    time.Duration
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
	index int // heap index, -1 when not queued

	// gen is the record's live generation; it increments every time the
	// record is released back to the free list, invalidating outstanding
	// handles.
	gen uint64
	// canceledGen remembers the generation whose life ended via Cancel
	// (zero = none yet), so a handle can still answer Canceled after the
	// record was released but before it is reused.
	canceledGen uint64
}

// Event is a handle to a scheduled callback. It can be used to cancel the
// callback before it fires. The zero value is an inert handle: Cancel and
// Pending report false.
//
// Handles are generation-checked: once the event fires or is canceled, the
// underlying pooled record may be recycled for a new event, and the old
// handle stops matching. All methods are safe on stale handles.
type Event struct {
	ev  *event
	gen uint64
	at  time.Duration
}

// At reports the virtual time the event was scheduled for.
func (e Event) At() time.Duration { return e.at }

// Pending reports whether the event is still queued: not yet fired and not
// canceled.
func (e Event) Pending() bool {
	return e.ev != nil && e.ev.gen == e.gen && e.ev.index >= 0
}

// Cancel prevents the event from firing. The event is removed from the
// queue immediately — Len tightens right away and the callback (and
// everything it captures) is released for collection. Canceling an event
// that already fired or was already canceled is a no-op. Cancel reports
// whether the event was still pending.
func (e Event) Cancel() bool {
	if !e.Pending() {
		return false
	}
	ev := e.ev
	s := ev.s
	s.removeAt(ev.index)
	ev.canceledGen = ev.gen
	s.release(ev)
	return true
}

// Canceled reports whether Cancel ended this event's life. The answer is
// accurate until the scheduler recycles the underlying record for a new
// event, after which a stale handle reports false; query it promptly.
func (e Event) Canceled() bool {
	return e.ev != nil && e.ev.canceledGen == e.gen
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; simulations are single-goroutine by design.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   []*event // binary min-heap by (at, seq)
	free    []*event // recycled records
	stopped bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events. Canceled events leave the
// queue immediately, so the count is exact.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a simulation bug, and silently reordering
// events would destroy determinism.
//
// fn allocates a closure when it captures variables; per-packet hot paths
// should use AtArg with a pooled record instead.
func (s *Scheduler) At(t time.Duration, fn func()) Event {
	if fn == nil {
		panic("simtime: At called with nil callback")
	}
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute virtual time t. Passing a
// package-level function and a pooled pointer argument keeps the call
// allocation-free — the closure-capturing pattern At invites is the single
// biggest allocation source in a per-packet simulation. arg should be a
// pointer; non-pointer values are boxed into the any and allocate.
func (s *Scheduler) AtArg(t time.Duration, fn func(any), arg any) Event {
	if fn == nil {
		panic("simtime: AtArg called with nil callback")
	}
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now. Negative d is treated as
// zero. See AtArg for the allocation contract.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) Event {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, fn, arg)
}

// schedule acquires a pooled record, fills it, and pushes it on the heap.
func (s *Scheduler) schedule(t time.Duration, fn func(), argFn func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("simtime: event scheduled in the past (now=%v, at=%v)", s.now, t))
	}
	ev := s.acquire()
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.argFn = argFn
	ev.arg = arg
	s.seq++
	s.push(ev)
	return Event{ev: ev, gen: ev.gen, at: t}
}

// acquire pops a record off the free list, or mints one on first use.
func (s *Scheduler) acquire() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{s: s, gen: 1, index: -1}
}

// release clears a record's payload so the callback and its captures are
// collectable, bumps the generation to invalidate outstanding handles, and
// returns the record to the free list.
func (s *Scheduler) release(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.index = -1
	ev.gen++
	s.free = append(s.free, ev)
}

// Reset returns the scheduler to its initial state — empty queue, clock at
// zero, sequence counter at zero, stop flag cleared — while keeping the
// event free list and the heap's backing array. One scheduler can thereby
// be reused across many sequential simulation runs (the fleet's per-shard
// discipline) with its pools already warm: the first run pays the event
// allocations, every later run on the same scheduler is allocation-free in
// steady state.
//
// Pending events are canceled: their records are recycled and outstanding
// handles go stale (Pending reports false, Cancel is a no-op). Because seq
// restarts at zero, a Reset scheduler fires events in exactly the order a
// freshly constructed one would — Reset-reuse is invisible to the
// simulation running on it.
func (s *Scheduler) Reset() {
	for _, ev := range s.queue {
		ev.canceledGen = ev.gen
		s.release(ev)
	}
	clear(s.queue)
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
}

// Step fires the earliest pending event, advancing the clock to its
// deadline. It reports whether an event fired; false means the queue is
// empty. The event's record is recycled before the callback runs, so a
// callback that schedules new events reuses it immediately.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.popMin()
	s.now = ev.at
	fn, argFn, arg := ev.fn, ev.argFn, ev.arg
	s.release(ev)
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	return true
}

// Peek returns the deadline of the earliest pending event and true, or zero
// and false if none is pending.
func (s *Scheduler) Peek() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// RunUntil fires events in order until the queue is exhausted or the next
// event lies strictly beyond t, then advances the clock to exactly t.
func (s *Scheduler) RunUntil(t time.Duration) {
	if t < s.now {
		panic(fmt.Sprintf("simtime: RunUntil into the past (now=%v, until=%v)", s.now, t))
	}
	for {
		next, ok := s.Peek()
		if !ok || next > t {
			break
		}
		s.Step()
		if s.stopped {
			break
		}
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Run fires events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	for !s.stopped && s.Step() {
	}
}

// Stop makes Run and RunUntil return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// less orders the heap by deadline, then scheduling order. seq is unique
// per event, so the order is total and pop order never depends on the
// heap's internal array layout.
func (s *Scheduler) less(i, j int) bool {
	a, b := s.queue[i], s.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) swap(i, j int) {
	q := s.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// push appends ev and restores the heap property.
func (s *Scheduler) push(ev *event) {
	ev.index = len(s.queue)
	s.queue = append(s.queue, ev)
	s.siftUp(ev.index)
}

// popMin removes and returns the heap minimum.
func (s *Scheduler) popMin() *event {
	ev := s.queue[0]
	n := len(s.queue) - 1
	s.swap(0, n)
	s.queue[n] = nil
	s.queue = s.queue[:n]
	if n > 0 {
		s.siftDown(0)
	}
	ev.index = -1
	return ev
}

// removeAt removes the event at heap index i (used by Cancel).
func (s *Scheduler) removeAt(i int) {
	n := len(s.queue) - 1
	removed := s.queue[i]
	if i != n {
		s.swap(i, n)
	}
	s.queue[n] = nil
	s.queue = s.queue[:n]
	if i < n {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	removed.index = -1
}

// siftUp restores the heap property from i toward the root.
func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property from i toward the leaves, reporting
// whether the element moved.
func (s *Scheduler) siftDown(i int) bool {
	start := i
	n := len(s.queue)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s.less(right, left) {
			child = right
		}
		if !s.less(child, i) {
			break
		}
		s.swap(i, child)
		i = child
	}
	return i > start
}

// Ticker schedules fn every interval, starting at now+interval, until
// canceled via the returned handle or until the scheduler stops. Re-arming
// dispatches through a package-level function, so a running ticker never
// allocates per tick.
type Ticker struct {
	s        *Scheduler
	interval time.Duration
	fn       func()
	ev       Event
	stopped  bool
}

// Tick creates and starts a Ticker. interval must be positive.
func (s *Scheduler) Tick(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("simtime: Tick with non-positive interval")
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// tickerFire dispatches one tick and re-arms; the closure-free counterpart
// of the old capture-per-arm pattern.
func tickerFire(a any) {
	t := a.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

func (t *Ticker) arm() {
	t.ev = t.s.AfterArg(t.interval, tickerFire, t)
}

// Stop cancels future ticks. It is safe to call multiple times and from
// within the tick callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
