package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of order: got %v", got)
		}
	}
}

func TestSchedulerAfter(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 15*time.Millisecond {
		t.Errorf("nested After fired at %v, want 15ms", at)
	}
}

func TestSchedulerNegativeAfterClamped(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("event with negative delay never fired")
	}
	if s.Now() != 0 {
		t.Errorf("clock moved to %v, want 0", s.Now())
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*time.Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5*time.Millisecond, func() {})
}

func TestSchedulerNilCallbackPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	s.At(time.Millisecond, nil)
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev := s.At(10*time.Millisecond, func() { fired = true })
	if !ev.Cancel() {
		t.Error("first Cancel returned false")
	}
	if ev.Cancel() {
		t.Error("second Cancel returned true")
	}
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10*time.Millisecond, func() { fired++ })
	s.At(30*time.Millisecond, func() { fired++ })
	s.RunUntil(20 * time.Millisecond)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("Now() = %v, want 20ms", s.Now())
	}
	s.RunUntil(40 * time.Millisecond)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(20*time.Millisecond, func() { fired = true })
	s.RunUntil(20 * time.Millisecond)
	if !fired {
		t.Error("event exactly at the RunUntil boundary did not fire")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1*time.Millisecond, func() { fired++; s.Stop() })
	s.At(2*time.Millisecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d after Stop, want 1", fired)
	}
	if !s.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestPeek(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.Peek(); ok {
		t.Error("Peek on empty queue reported an event")
	}
	ev := s.At(10*time.Millisecond, func() {})
	s.At(20*time.Millisecond, func() {})
	if at, ok := s.Peek(); !ok || at != 10*time.Millisecond {
		t.Errorf("Peek = %v,%v want 10ms,true", at, ok)
	}
	ev.Cancel()
	if at, ok := s.Peek(); !ok || at != 20*time.Millisecond {
		t.Errorf("Peek after cancel = %v,%v want 20ms,true", at, ok)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	var ticks []time.Duration
	tk := s.Tick(10*time.Millisecond, func() {
		ticks = append(ticks, s.Now())
	})
	s.RunUntil(35 * time.Millisecond)
	tk.Stop()
	s.RunUntil(100 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = s.Tick(time.Millisecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Second)
	if n != 2 {
		t.Errorf("ticked %d times, want 2", n)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the clock never goes backwards.
func TestSchedulerMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fireTimes []time.Duration
		for _, d := range delays {
			s.At(time.Duration(d)*time.Microsecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Len never exceeds the number of scheduled events and reaches
// zero after Run.
func TestSchedulerDrainProperty(t *testing.T) {
	f := func(delays []uint8) bool {
		s := NewScheduler()
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {})
		}
		if s.Len() != len(delays) {
			return false
		}
		s.Run()
		return s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
