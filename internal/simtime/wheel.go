package simtime

import (
	"math/bits"
	"time"
)

// Hierarchical timer wheel (ImplWheel, the default scheduler queue).
//
// Virtual time is bucketed into ticks of 2^tickShift ns (~8.2 µs). The
// wheel has wheelLevels levels of wheelSlots slots each; level l spans
// 2^(tickShift + wheelBits*(l+1)) ns of virtual time, so the three levels
// cover ~16.8 ms, ~34.4 s, and ~19.6 h ahead of the cursor. Events
// beyond the top window sit in a small overflow min-heap. Wide levels
// (2048 slots) buy fewer cascades per event than a narrower, deeper
// geometry would: RTC horizons concentrate under tens of seconds, so most
// events are born at level 0 or 1 and cascade at most once.
//
// Placement invariant: an event with deadline tick t lives at the lowest
// level l whose window contains it — t>>(wheelBits*(l+1)) equals the same
// shift of the cursor — in slot (t>>(wheelBits*l)) & wheelMask. When the
// cursor's level-(l+1) digit changes, the slot it moved into at level l+1
// is drained and its events re-placed (the cascade); every slot the
// cursor skipped over is provably empty because the cursor only ever
// advances to the deadline of the global minimum event.
//
// Slots are intrusive doubly-linked lists threaded through the pooled
// event records, linked by arena id rather than by pointer: the wheel
// performs no allocation at any point, and the id stores that implement
// insert, cancel, and cascade unlink take no GC write barriers (the
// pointer version of these splices was the hottest barrier site in fleet
// profiles). The slot table itself is pointer-free for the same reason,
// so the collector never scans it.
//
// Ordering is exact, not approximate: within a level, slot index order is
// tick order, and levels are scanned lowest first, so the first occupied
// slot found holds the globally earliest event. Slots are unordered bags;
// an occupied higher-level slot is never searched, only cascaded down
// (see min), and when the cursor reaches an occupied level-0 slot with
// more than one resident, the slot is drained onto a small (at, seq)
// min-heap of ready events, so a same-instant burst of k events pops in
// O(log k) apiece rather than rescanning the bag per pop. The FIFO
// tie-break for same-instant events is the heap's seq order. The wheel
// therefore fires the exact same sequence as the binary heap — only
// host-CPU work changes, never virtual-time order.
const (
	tickShift   = 13 // 1 tick = 8.192 µs of virtual time
	wheelBits   = 11
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	wheelWords  = wheelSlots / 64 // 2048-bit occupancy bitmap per level
)

// Event location tags (event.level). Values 0..wheelLevels-1 are wheel
// levels; the named tags mark the three heap locations. A record that is
// not queued anywhere has index == -1 and its level is meaningless.
const (
	locHeap  int8 = wheelLevels     // ImplHeap main queue
	locOver  int8 = wheelLevels + 1 // wheel overflow heap
	locReady int8 = wheelLevels + 2 // wheel ready heap (current tick)
)

// wheelTick converts a deadline to its wheel tick. Deadlines are never
// negative (schedule panics on past events and the clock starts at zero),
// so the shift is a plain division by the tick size.
func wheelTick(at time.Duration) uint64 { return uint64(at) >> tickShift }

// wheel is the hierarchical timer wheel. It is embedded by value in
// Scheduler; the zero value is ready to use with the cursor at tick zero.
// Methods take the owning Scheduler to resolve id links against its
// arena.
type wheel struct {
	// cur is the cursor tick. It is always >= the tick of the scheduler's
	// clock but may run ahead of it: min cascades by advancing the cursor
	// to the next occupied slot, which is sound because no event is queued
	// before that slot. place tolerates the gap by filing an event whose
	// deadline trails the cursor into the cursor's own slot.
	cur uint64
	// low is a lower bound on the minimum queued tick, always >= cur. It
	// lets min() resume scanning where the previous search ended instead
	// of walking every occupancy word from the cursor each time: pushes
	// below the bound pull it down, found minima tighten it, and levels
	// whose whole window lies below it are skipped without a scan.
	low   uint64
	count int // queued events across slots, ready heap, and overflow heap
	occ   [wheelLevels][wheelWords]uint64
	over  eventHeap // events beyond the top level's window
	// ready stages the residents of the level-0 slot the cursor currently
	// occupies. Its events all share tick cur — nothing queued anywhere
	// else can precede them — and pop in (at, seq) order, which keeps a
	// same-instant burst of k events at O(log k) per pop instead of a
	// linear slot rescan.
	ready eventHeap
	slots [wheelLevels][wheelSlots]int32
}

// push places ev and counts it.
func (w *wheel) push(s *Scheduler, ev *event) {
	if t := wheelTick(ev.at); t < w.low {
		if t < w.cur {
			t = w.cur // placement clamps to the cursor's slot; so must low
		}
		w.low = t
	}
	w.place(s, ev)
	w.count++
}

// place files ev at the lowest level whose window contains its deadline,
// or on the overflow heap. Used by push and by the cascade (which must
// not touch count). Slot insertion prepends: position in the list carries
// no ordering (order is settled on the ready heap). A deadline that trails the
// cursor — possible when min has cascaded the cursor ahead of the clock —
// files into the cursor's own slot, where the next scan is guaranteed to
// visit it.
func (w *wheel) place(s *Scheduler, ev *event) {
	t := wheelTick(ev.at)
	if t < w.cur {
		t = w.cur
	}
	// The lowest level whose window contains t is set by the highest bit
	// where t and the cursor differ: digit positions above it agree, the
	// one holding it does not. One xor+len replaces a per-level shift
	// loop on the hottest wheel path.
	lvl := 0
	if x := t ^ w.cur; x >= wheelSlots {
		lvl = (bits.Len64(x) - 1) / wheelBits
		if lvl >= wheelLevels {
			ev.level = locOver
			w.over.push(ev)
			return
		}
	}
	slot := int(t>>(wheelBits*lvl)) & wheelMask
	ev.level = int8(lvl)
	ev.slot = uint16(slot)
	ev.index = 0 // queued marker; list position is the links' business
	ev.prev = 0
	ev.next = w.slots[lvl][slot]
	if ev.next != 0 {
		s.evAt(ev.next).prev = ev.id
	}
	w.slots[lvl][slot] = ev.id
	w.occ[lvl][slot>>6] |= 1 << (slot & 63)
}

// remove unqueues ev (which must be queued in this wheel) and uncounts
// it.
func (w *wheel) remove(s *Scheduler, ev *event) {
	switch ev.level {
	case locOver:
		w.over.removeAt(ev.index)
	case locReady:
		w.ready.removeAt(ev.index)
	default:
		w.slotRemove(s, ev)
	}
	w.count--
}

// slotRemove splices ev out of its slot list in O(1), clearing the slot's
// occupancy bit when the list empties.
func (w *wheel) slotRemove(s *Scheduler, ev *event) {
	if ev.next != 0 {
		s.evAt(ev.next).prev = ev.prev
	}
	if ev.prev != 0 {
		s.evAt(ev.prev).next = ev.next
	} else {
		lvl, slot := int(ev.level), int(ev.slot)
		w.slots[lvl][slot] = ev.next
		if ev.next == 0 {
			w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
		}
	}
	ev.next = 0
	ev.prev = 0
	ev.index = -1
}

// min returns the globally earliest queued event, or nil when empty. The
// first occupied slot at the lowest occupied level holds it: within a
// level, slot index order (scanning upward from the low watermark's
// digit) is tick order, and every event at a higher level is strictly
// later than every event the current level can hold.
//
// No slot is ever linearly searched for a minimum. When the first
// occupied slot sits at a higher level, the cursor is advanced to that
// slot's start tick (sound: every queued event lies at or beyond it),
// which drains the slot one level down, and the search restarts — each
// event is thereby touched at most wheelLevels times across its whole
// life instead of being rescanned on every query. When it is a level-0
// slot with a lone resident, that resident is the answer outright; with
// several residents, the slot drains onto the ready heap and the heap
// minimum is the answer. With thousands of standing far-horizon events
// this is the difference between O(1) amortized and O(n) per Step.
func (w *wheel) min(s *Scheduler) *event {
	if len(w.ready) > 0 {
		// Ready events sit at tick cur, so only newcomers scheduled at
		// that same tick — filed into the cursor's own slot — can compete.
		// Fold them in before answering.
		slot := int(w.cur) & wheelMask
		if w.occ[0][slot>>6]&(1<<(slot&63)) != 0 {
			w.drainReady(s, slot)
		}
		return w.ready[0]
	}
	for {
		cascade := -1
		var cslot int
		for lvl := 0; lvl < wheelLevels; lvl++ {
			shift := wheelBits * (lvl + 1)
			window := w.cur >> shift
			if w.low>>shift != window {
				// Every resident of this level lives in the cursor's window
				// here, and every queued tick is >= low, which lies beyond
				// that whole window: the level is empty, skip the scan.
				continue
			}
			start := int(w.low>>(wheelBits*lvl)) & wheelMask
			slot, ok := w.scanOcc(lvl, start)
			if !ok {
				// The level scanned empty from low upward, and everything
				// below low was already empty: the bound rises to the
				// window's end, so the next search skips this level.
				w.low = (window + 1) << shift
				continue
			}
			if lvl == 0 {
				ev := s.evAt(w.slots[0][slot])
				tick := w.cur>>wheelBits<<wheelBits | uint64(slot)
				if lo := wheelTick(ev.at); lo > w.low {
					w.low = lo
				}
				if ev.next == 0 {
					return ev // lone resident: no staging needed
				}
				w.advance(s, tick) // same window: moves cursor, no cascade
				w.drainReady(s, slot)
				return w.ready[0]
			}
			cascade, cslot = lvl, slot
			break
		}
		if cascade < 0 {
			if len(w.over) == 0 {
				return nil
			}
			// Everything pending lies past the top window. Jump the cursor
			// to the overflow minimum's top window, which pulls that whole
			// window onto the wheel, and rescan.
			const topShift = wheelBits * wheelLevels
			w.advance(s, wheelTick(w.over[0].at)>>topShift<<topShift)
			continue
		}
		// Advance to the occupied slot's start tick. The slot index is
		// strictly above the cursor's digit at this level (an event in the
		// cursor's own slot would have been placed lower), so the cursor
		// strictly advances and the loop terminates.
		shift := wheelBits * cascade
		w.advance(s, (w.cur>>(shift+wheelBits)<<wheelBits|uint64(cslot))<<shift)
	}
}

// drainReady moves every resident of a level-0 slot onto the ready heap.
// The slot's tick must equal the cursor's (the caller advances first), so
// the drained events are exactly the next tick's worth of work.
func (w *wheel) drainReady(s *Scheduler, slot int) {
	id := w.slots[0][slot]
	w.slots[0][slot] = 0
	w.occ[0][slot>>6] &^= 1 << (slot & 63)
	for id != 0 {
		ev := s.evAt(id)
		id = ev.next
		ev.next, ev.prev = 0, 0
		ev.level = locReady
		w.ready.push(ev)
	}
}

// scanOcc finds the first occupied slot at or after start on the given
// level. Events never sit below the cursor's digit (deadlines are never
// in the past), so the scan needs no wraparound.
func (w *wheel) scanOcc(lvl, start int) (int, bool) {
	word := start >> 6
	if m := w.occ[lvl][word] &^ (1<<(start&63) - 1); m != 0 {
		return word<<6 + bits.TrailingZeros64(m), true
	}
	for word++; word < wheelWords; word++ {
		if m := w.occ[lvl][word]; m != 0 {
			return word<<6 + bits.TrailingZeros64(m), true
		}
	}
	return 0, false
}

// advance moves the cursor to tick and cascades: for each level whose
// digit changed, the slot the cursor moved into is drained and its
// events re-placed one level down. Slots the cursor skipped are empty by
// construction — the cursor only advances to the deadline of the minimum
// event, to the start of the next occupied slot (min's cascade), or to an
// idle RunUntil target beyond every deadline, so no queued event can live
// strictly between the old and new cursor. A target at or behind the
// cursor is a no-op: the cursor is monotone and may already have
// cascaded ahead of the clock.
func (w *wheel) advance(s *Scheduler, tick uint64) {
	if tick <= w.cur {
		return
	}
	old := w.cur
	w.cur = tick
	if w.low < tick {
		w.low = tick
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		shift := wheelBits * lvl
		if old>>shift == tick>>shift {
			return
		}
		w.drainSlot(s, lvl, int(tick>>shift)&wheelMask)
	}
	const topShift = wheelBits * wheelLevels
	for len(w.over) > 0 && wheelTick(w.over[0].at)>>topShift == tick>>topShift {
		w.place(s, w.over.popMin())
	}
}

// drainSlot re-places every event of a slot (the cascade step). Re-placed
// events always land at a lower level, never back into a slot still being
// drained, so the one-pass walk is safe.
func (w *wheel) drainSlot(s *Scheduler, lvl, slot int) {
	id := w.slots[lvl][slot]
	if id == 0 {
		return
	}
	w.slots[lvl][slot] = 0
	w.occ[lvl][slot>>6] &^= 1 << (slot & 63)
	for id != 0 {
		ev := s.evAt(id)
		id = ev.next
		w.place(s, ev)
	}
}

// reset cancel-releases every queued event back to the scheduler's free
// list and returns the wheel to its initial state. Only occupied slots
// are visited (via the occupancy bitmaps), so reset is O(queued events),
// not O(total slots).
func (w *wheel) reset(s *Scheduler) {
	for lvl := range w.slots {
		for word := range w.occ[lvl] {
			m := w.occ[lvl][word]
			for m != 0 {
				slot := word<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				for id := w.slots[lvl][slot]; id != 0; {
					ev := s.evAt(id)
					id = ev.next
					ev.canceledGen = ev.gen
					s.release(ev)
				}
				w.slots[lvl][slot] = 0
			}
			w.occ[lvl][word] = 0
		}
	}
	for i, ev := range w.over {
		w.over[i] = nil
		ev.canceledGen = ev.gen
		s.release(ev)
	}
	w.over = w.over[:0]
	for i, ev := range w.ready {
		w.ready[i] = nil
		ev.canceledGen = ev.gen
		s.release(ev)
	}
	w.ready = w.ready[:0]
	w.cur = 0
	w.low = 0
	w.count = 0
}
