package simtime

import (
	"testing"
	"time"
)

// Deadlines that land on each wheel level (given the cursor at zero) and
// beyond the top window, per the geometry in wheel.go: level windows of
// ~16.8 ms, ~34.4 s, and ~19.6 h.
var levelDeadlines = []time.Duration{
	500 * time.Microsecond, // level 0
	100 * time.Millisecond, // level 1
	30 * time.Second,       // level 1, high slots
	2 * time.Hour,          // level 2
	12 * time.Hour,         // level 2, high slots
	30 * time.Hour,         // overflow heap
}

// TestWheelCascadeAcrossLevels schedules one event per wheel level plus
// overflow residents and checks they fire in deadline order at exact
// times — each fire forces the cursor across level boundaries, so every
// cascade path (drain, re-place, overflow pull-in) runs.
func TestWheelCascadeAcrossLevels(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	for _, d := range levelDeadlines {
		s.At(d, func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	if len(fired) != len(levelDeadlines) {
		t.Fatalf("fired %d events, want %d", len(fired), len(levelDeadlines))
	}
	for i, want := range levelDeadlines {
		if fired[i] != want {
			t.Errorf("fire %d at %v, want %v", i, fired[i], want)
		}
	}
}

// TestWheelSameInstantTieAfterCascade pins the FIFO tie-break for
// same-instant events that reach their deadline via different routes: one
// scheduled far ahead (placed at a high level, cascaded down), one
// scheduled later in scheduling order but directly into a low level. The
// earlier seq must fire first regardless of placement history.
func TestWheelSameInstantTieAfterCascade(t *testing.T) {
	s := NewScheduler()
	at := 10 * time.Second // level 1 from t=0
	var got []int
	s.At(at, func() { got = append(got, 0) }) // seq 0, cascades down
	s.At(at-time.Second, func() {             // fires at 9s: deadline now ~1s out
		s.At(at, func() { got = append(got, 1) }) // seq 2, placed low directly
	})
	s.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("same-instant fire order %v, want [0 1]", got)
	}
}

// TestWheelCancelInSlotList covers the three unlink positions of the
// intrusive slot list — head, middle, tail — plus an overflow cancel.
func TestWheelCancelInSlotList(t *testing.T) {
	s := NewScheduler()
	at := time.Millisecond
	var got []int
	evs := make([]Event, 5)
	for i := range evs {
		i := i
		evs[i] = s.At(at, func() { got = append(got, i) })
	}
	far := s.At(30*time.Hour, func() { got = append(got, 99) })
	evs[4].Cancel() // head of the prepended list
	evs[2].Cancel() // middle
	evs[0].Cancel() // tail
	far.Cancel()    // overflow heap resident
	if s.Len() != 2 {
		t.Fatalf("Len = %d after cancels, want 2", s.Len())
	}
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("survivors fired %v, want [1 3]", got)
	}
}

// TestWheelResetAcrossLevels extends the PR 7 pool-poisoning protocol to
// the wheel: Reset a scheduler holding residents at every level and the
// overflow heap, poison the recycled records, and require a rerun to be
// indistinguishable from a fresh scheduler. A slot head, occupancy bit,
// or link that Reset missed would resurface here as a firing from the
// previous life or a corrupted slot list.
func TestWheelResetAcrossLevels(t *testing.T) {
	s := NewScheduler()
	for _, d := range levelDeadlines {
		s.At(d, func() { t.Errorf("event from pre-Reset life fired at %v", s.Now()) })
	}
	// Walk the clock into the wheel so cur, low, and the occupancy state
	// are all non-trivial when Reset hits.
	s.RunUntil(200 * time.Microsecond)
	s.Reset()
	if s.Len() != 0 || s.Now() != 0 {
		t.Fatalf("after Reset: Len=%d Now=%v, want zeros", s.Len(), s.Now())
	}
	if n := poisonFreeEvents(t, s); n < len(levelDeadlines) {
		t.Fatalf("free list holds %d records after Reset, want >= %d", n, len(levelDeadlines))
	}

	workload := func(s *Scheduler) []time.Duration {
		var fired []time.Duration
		for _, d := range levelDeadlines {
			s.At(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return fired
	}
	got := workload(s)
	want := workload(NewScheduler())
	if len(got) != len(want) {
		t.Fatalf("reused scheduler fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fire %d at %v on reused scheduler, %v on fresh", i, got[i], want[i])
		}
	}
}

// TestWheelIdleRunUntil pins that advancing across an empty stretch of
// virtual time (RunUntil beyond every deadline) leaves the wheel
// consistent: events scheduled afterwards still fire at exact times.
func TestWheelIdleRunUntil(t *testing.T) {
	s := NewScheduler()
	s.RunUntil(3 * time.Hour) // idle cascade across every level boundary
	var at time.Duration
	s.After(90*time.Minute, func() { at = s.Now() })
	s.Run()
	if want := 3*time.Hour + 90*time.Minute; at != want {
		t.Errorf("post-idle event fired at %v, want %v", at, want)
	}
}

// TestWheelZeroAllocSteadyState is the wheel twin of
// TestSchedulerStepZeroAlloc, with a horizon mix that keeps the cascade
// machinery (not just level 0) on the measured path.
func TestWheelZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	var k int
	var churn func(any)
	churn = func(any) {
		horizons := []time.Duration{50 * time.Microsecond, 7 * time.Millisecond, 3 * time.Second}
		k++
		s.AfterArg(horizons[k%len(horizons)], churn, nil)
	}
	s.AfterArg(0, churn, nil)
	for i := 0; i < 1024; i++ { // reach pool steady state
		s.Step()
	}
	avg := testing.AllocsPerRun(1000, func() { s.Step() })
	if avg != 0 {
		t.Errorf("wheel steady-state Step allocates %.2f allocs/op, want 0", avg)
	}
}
