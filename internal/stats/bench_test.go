package stats

import "testing"

func BenchmarkLinRegSlope(b *testing.B) {
	r := NewLinReg(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i), float64(i%7))
		r.Slope()
	}
}

func BenchmarkWindowedMin(b *testing.B) {
	w := NewWindowedMin(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Update(float64(i % 997))
	}
}
