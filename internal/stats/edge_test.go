package stats

import "testing"

// TestQuantileSingleSample: with one sample every quantile is that sample
// — interpolation must not index past the ends or blend with zero.
func TestQuantileSingleSample(t *testing.T) {
	var s Summary
	s.Add(42.5)
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.95, 1, 2} {
		if got := s.Quantile(q); got != 42.5 {
			t.Errorf("Quantile(%v) = %v, want 42.5", q, got)
		}
	}
	if s.Min() != 42.5 || s.Max() != 42.5 {
		t.Errorf("Min/Max = %v/%v, want 42.5/42.5", s.Min(), s.Max())
	}
	if s.Mean() != 42.5 {
		t.Errorf("Mean = %v, want 42.5", s.Mean())
	}
}

// TestQuantileEmpty: an empty summary yields zero everywhere, never NaN
// or a panic.
func TestQuantileEmpty(t *testing.T) {
	var s Summary
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", s.Mean())
	}
	if s.Stddev() != 0 {
		t.Errorf("empty Stddev = %v, want 0", s.Stddev())
	}
}

// TestQuantileTwoSamples pins the interpolation endpoints and midpoint.
func TestQuantileTwoSamples(t *testing.T) {
	var s Summary
	s.Add(10)
	s.Add(20)
	cases := []struct{ q, want float64 }{{0, 10}, {0.5, 15}, {1, 20}}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}
