package stats

import "math"

// MeanStd returns the sample mean and the sample standard deviation
// (Bessel-corrected). Fewer than two samples yield a zero deviation.
func MeanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / (n - 1))
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// of xs, using Student's t critical values for small samples.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	_, std := MeanStd(xs)
	return tCrit(n-1) * std / math.Sqrt(float64(n))
}

// tCrit returns the two-sided 95% Student-t critical value for df degrees
// of freedom (tabulated for small df, 1.96 asymptotically).
func tCrit(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 30:
		return 2.05
	case df < 60:
		return 2.0
	}
	return 1.96
}

// WelchT computes Welch's t statistic and approximate degrees of freedom
// for the difference of means between two samples. Returns ok=false when
// either sample has fewer than two points or zero variance in both.
func WelchT(a, b []float64) (t float64, df float64, ok bool) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, false
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	va := sa * sa / float64(len(a))
	vb := sb * sb / float64(len(b))
	if va+vb == 0 {
		return 0, 0, false
	}
	t = (ma - mb) / math.Sqrt(va+vb)
	num := (va + vb) * (va + vb)
	den := va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1)
	if den == 0 {
		return t, math.Inf(1), true
	}
	return t, num / den, true
}

// SignificantlyDifferent reports whether two samples' means differ at the
// 95% level under Welch's t-test.
func SignificantlyDifferent(a, b []float64) bool {
	t, df, ok := WelchT(a, b)
	if !ok {
		return false
	}
	return math.Abs(t) > tCrit(int(df))
}
