package stats

import (
	"math"
	"testing"
)

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	// Sample (Bessel) stddev of this set is ~2.138.
	if math.Abs(s-2.1381) > 1e-3 {
		t.Errorf("std = %v", s)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty input")
	}
	if m, s := MeanStd([]float64{7}); m != 7 || s != 0 {
		t.Error("single sample")
	}
}

func TestCI95KnownCase(t *testing.T) {
	// n=5, std=1: CI95 = 2.776 / sqrt(5) ≈ 1.2415.
	xs := []float64{-1.2649, -0.6325, 0, 0.6325, 1.2649} // mean 0, sample std ~1
	ci := CI95(xs)
	if math.Abs(ci-1.2415) > 0.01 {
		t.Errorf("CI95 = %v, want ~1.2415", ci)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI of single sample should be 0")
	}
}

func TestTCritMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		c := tCrit(df)
		if c > prev+1e-9 {
			t.Fatalf("tCrit not non-increasing at df=%d", df)
		}
		prev = c
	}
	if tCrit(1000) != 1.96 {
		t.Error("asymptotic tCrit")
	}
}

func TestWelch(t *testing.T) {
	a := []float64{10, 11, 9, 10.5, 9.5}
	b := []float64{20, 21, 19, 20.5, 19.5}
	if !SignificantlyDifferent(a, b) {
		t.Error("clearly different samples not flagged")
	}
	c := []float64{10, 11, 9, 10.5, 9.5}
	if SignificantlyDifferent(a, c) {
		t.Error("identical distributions flagged")
	}
	if _, _, ok := WelchT([]float64{1}, b); ok {
		t.Error("degenerate sample accepted")
	}
	if _, _, ok := WelchT([]float64{5, 5}, []float64{5, 5}); ok {
		t.Error("zero-variance pair accepted")
	}
}
