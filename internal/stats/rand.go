package stats

import (
	"math"
	"math/rand"
)

// Rand is a thin deterministic PRNG wrapper. Every simulator component owns
// its own Rand seeded from the session seed, so adding randomness to one
// component never perturbs another (no shared-stream coupling).
type Rand struct {
	r *rand.Rand
}

// NewRand returns a PRNG seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform sample in [0, n). n must be positive.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.r.NormFloat64() }

// LogNormal returns a sample from a log-normal distribution with the given
// mean (of the underlying distribution, i.e. E[X] = mean) and coefficient of
// variation cv. cv = 0 returns mean exactly.
func (r *Rand) LogNormal(mean, cv float64) float64 {
	if cv <= 0 || mean <= 0 {
		return mean
	}
	sigma2 := math.Log1p(cv * cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.r.NormFloat64())
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (r *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return r.r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}

// Jitter returns v scaled by a uniform factor in [1-amp, 1+amp].
func (r *Rand) Jitter(v, amp float64) float64 {
	if amp <= 0 {
		return v
	}
	return v * (1 + amp*(2*r.r.Float64()-1))
}

// Split derives a new independent PRNG from this one. Used to hand each
// subcomponent its own stream.
func (r *Rand) Split() *Rand {
	return NewRand(r.r.Int63())
}
