// Package stats provides the small online statistics used throughout the
// simulator: exponentially weighted moving averages, windowed extrema,
// percentile summaries, histograms, an online linear regression (used by the
// congestion controller's trendline filter), and a deterministic PRNG
// wrapper.
//
// All types have useful zero values unless a constructor is documented.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// EWMA is an exponentially weighted moving average. The zero value is empty;
// the first Update seeds the average directly.
type EWMA struct {
	alpha  float64
	value  float64
	seeded bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Higher
// alpha weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds a sample into the average and returns the new value.
func (e *EWMA) Update(sample float64) float64 {
	if !e.seeded {
		e.value = sample
		e.seeded = true
		return e.value
	}
	e.value += e.alpha * (sample - e.value)
	return e.value
}

// Value returns the current average (zero if no samples yet).
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether at least one sample has been folded in.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset clears the average back to the unseeded state.
func (e *EWMA) Reset() { e.value = 0; e.seeded = false }

// Set forces the average to v and marks it seeded.
func (e *EWMA) Set(v float64) { e.value = v; e.seeded = true }

// WindowedMin tracks the minimum of the last N samples in O(1) amortized
// time using a monotonic deque.
type WindowedMin struct {
	window int
	seq    int
	deque  []minEntry // increasing values
}

type minEntry struct {
	seq int
	val float64
}

// NewWindowedMin returns a tracker over the last window samples. window must
// be positive.
func NewWindowedMin(window int) *WindowedMin {
	if window <= 0 {
		panic("stats: WindowedMin window must be positive")
	}
	return &WindowedMin{window: window}
}

// Update inserts a sample and returns the current windowed minimum.
func (w *WindowedMin) Update(v float64) float64 {
	for len(w.deque) > 0 && w.deque[len(w.deque)-1].val >= v {
		w.deque = w.deque[:len(w.deque)-1]
	}
	w.deque = append(w.deque, minEntry{seq: w.seq, val: v})
	w.seq++
	for w.deque[0].seq <= w.seq-1-w.window {
		w.deque = w.deque[1:]
	}
	return w.deque[0].val
}

// Min returns the current windowed minimum, or +Inf when empty.
func (w *WindowedMin) Min() float64 {
	if len(w.deque) == 0 {
		return math.Inf(1)
	}
	return w.deque[0].val
}

// WindowedMax tracks the maximum of the last N samples in O(1) amortized
// time using a monotonic deque.
type WindowedMax struct {
	window int
	seq    int
	deque  []minEntry // decreasing values
}

// NewWindowedMax returns a tracker over the last window samples. window
// must be positive.
func NewWindowedMax(window int) *WindowedMax {
	if window <= 0 {
		panic("stats: WindowedMax window must be positive")
	}
	return &WindowedMax{window: window}
}

// Update inserts a sample and returns the current windowed maximum.
func (w *WindowedMax) Update(v float64) float64 {
	for len(w.deque) > 0 && w.deque[len(w.deque)-1].val <= v {
		w.deque = w.deque[:len(w.deque)-1]
	}
	w.deque = append(w.deque, minEntry{seq: w.seq, val: v})
	w.seq++
	for w.deque[0].seq <= w.seq-1-w.window {
		w.deque = w.deque[1:]
	}
	return w.deque[0].val
}

// Max returns the current windowed maximum, or -Inf when empty.
func (w *WindowedMax) Max() float64 {
	if len(w.deque) == 0 {
		return math.Inf(-1)
	}
	return w.deque[0].val
}

// Summary computes order statistics over a recorded sample set. Samples are
// kept in full; simulations are small enough that sketching is unnecessary,
// and exact percentiles make tests deterministic.
type Summary struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records a sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// Count returns the number of recorded samples.
func (s *Summary) Count() int { return len(s.samples) }

// Sum returns the sum of all samples.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or zero for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Stddev returns the population standard deviation, or zero if fewer than
// two samples were recorded.
func (s *Summary) Stddev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (q in [0,1]) using linear
// interpolation between order statistics. Empty summaries return zero.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if q <= 0 {
		s.ensureSorted()
		return s.samples[0]
	}
	if q >= 1 {
		s.ensureSorted()
		return s.samples[len(s.samples)-1]
	}
	s.ensureSorted()
	pos := q * float64(len(s.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.samples[lo]
	}
	frac := pos - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Min returns the smallest sample, or zero for an empty summary.
func (s *Summary) Min() float64 { return s.Quantile(0) }

// Max returns the largest sample, or zero for an empty summary.
func (s *Summary) Max() float64 { return s.Quantile(1) }

// Samples returns a copy of the recorded samples. The order is
// unspecified: any preceding Quantile/Min/Max call sorts the backing
// array in place, so callers that need insertion order must record it
// themselves. Mutating the returned slice never affects the Summary.
// Use for CDF rendering (sort the copy first).
func (s *Summary) Samples() []float64 {
	out := make([]float64, len(s.samples))
	copy(out, s.samples)
	return out
}

// Histogram is a fixed-bucket histogram over [min, max) with uniform bucket
// widths; samples outside the range fall into the first/last bucket.
type Histogram struct {
	min, max float64
	counts   []int
	total    int
}

// NewHistogram creates a histogram with n uniform buckets spanning
// [min, max). n must be positive and max > min.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{min: min, max: max, counts: make([]int, n)}
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.min) / (h.max - h.min) * float64(len(h.counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Counts returns the per-bucket counts (not a copy; callers must not
// mutate).
func (h *Histogram) Counts() []int { return h.counts }

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.max - h.min) / float64(len(h.counts))
	return h.min + (float64(i)+0.5)*w
}

// LinReg is an online simple linear regression y = a + b*x over a sliding
// window of at most N points. It is the core of the GCC trendline filter.
type LinReg struct {
	window int
	xs, ys []float64
}

// NewLinReg returns a regression over the last window points. window must be
// at least 2.
func NewLinReg(window int) *LinReg {
	if window < 2 {
		panic("stats: LinReg window must be >= 2")
	}
	return &LinReg{window: window}
}

// Add inserts a point, evicting the oldest when the window is full.
func (r *LinReg) Add(x, y float64) {
	r.xs = append(r.xs, x)
	r.ys = append(r.ys, y)
	if len(r.xs) > r.window {
		r.xs = r.xs[1:]
		r.ys = r.ys[1:]
	}
}

// Len returns the number of points currently in the window.
func (r *LinReg) Len() int { return len(r.xs) }

// Slope returns the least-squares slope b and true, or 0 and false when
// fewer than two points (or zero x-variance) are available.
func (r *LinReg) Slope() (float64, bool) {
	n := len(r.xs)
	if n < 2 {
		return 0, false
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += r.xs[i]
		sy += r.ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		dx := r.xs[i] - mx
		num += dx * (r.ys[i] - my)
		den += dx * dx
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// Reset drops all points.
func (r *LinReg) Reset() { r.xs = r.xs[:0]; r.ys = r.ys[:0] }

// RateMeter measures a rate (e.g. acknowledged bitrate) over a sliding time
// window from (timestamp, amount) samples. Timestamps are float64 seconds.
type RateMeter struct {
	window  float64 // seconds
	times   []float64
	amounts []float64
	total   float64
}

// NewRateMeter returns a meter over the given window in seconds.
func NewRateMeter(windowSec float64) *RateMeter {
	if windowSec <= 0 {
		panic("stats: RateMeter window must be positive")
	}
	return &RateMeter{window: windowSec}
}

// Add records amount observed at time t (seconds). Times must be
// non-decreasing.
func (m *RateMeter) Add(t, amount float64) {
	m.times = append(m.times, t)
	m.amounts = append(m.amounts, amount)
	m.total += amount
	m.evict(t)
}

func (m *RateMeter) evict(now float64) {
	cut := now - m.window
	i := 0
	for i < len(m.times) && m.times[i] < cut {
		m.total -= m.amounts[i]
		i++
	}
	if i > 0 {
		m.times = m.times[i:]
		m.amounts = m.amounts[i:]
	}
}

// Rate returns the windowed rate in amount-units per second as of time t.
// With no samples in the window it returns zero.
func (m *RateMeter) Rate(t float64) float64 {
	m.evict(t)
	if len(m.times) == 0 {
		return 0
	}
	span := t - m.times[0]
	if span < m.window/2 {
		span = m.window / 2 // avoid wild rates from a near-empty window
	}
	return m.total / span
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
