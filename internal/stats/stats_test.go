package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMASeedAndConverge(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seeded() {
		t.Error("zero EWMA reports seeded")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first update = %v, want 10 (seed)", got)
	}
	e.Update(20) // 15
	if got := e.Value(); got != 15 {
		t.Errorf("after 10,20 with alpha .5: %v, want 15", got)
	}
	for i := 0; i < 100; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EWMA did not converge to 42: %v", e.Value())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.2)
	e.Update(5)
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Error("Reset did not clear state")
	}
	e.Set(7)
	if !e.Seeded() || e.Value() != 7 {
		t.Error("Set did not seed")
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

// Property: EWMA stays within [min, max] of its inputs.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		for _, v := range samples {
			// Extreme magnitudes overflow the update arithmetic itself;
			// restrict to the range the simulator actually uses.
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true
			}
		}
		e := NewEWMA(0.3)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range samples {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			got := e.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowedMin(t *testing.T) {
	w := NewWindowedMin(3)
	cases := []struct {
		in   float64
		want float64
	}{
		{5, 5}, {3, 3}, {4, 3}, {6, 3}, {7, 4}, {8, 6}, {1, 1},
	}
	for i, c := range cases {
		if got := w.Update(c.in); got != c.want {
			t.Errorf("step %d: Update(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestWindowedMinEmpty(t *testing.T) {
	w := NewWindowedMin(4)
	if !math.IsInf(w.Min(), 1) {
		t.Errorf("empty Min = %v, want +Inf", w.Min())
	}
}

// Property: windowed min equals brute-force min of last N samples.
func TestWindowedMinProperty(t *testing.T) {
	f := func(raw []int16) bool {
		const n = 5
		w := NewWindowedMin(n)
		hist := []float64{}
		for _, r := range raw {
			v := float64(r)
			hist = append(hist, v)
			got := w.Update(v)
			lo := math.Inf(1)
			start := len(hist) - n
			if start < 0 {
				start = 0
			}
			for _, h := range hist[start:] {
				lo = math.Min(lo, h)
			}
			if got != lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryQuantiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	checks := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.95, 95.05}, {0.99, 99.01},
	}
	for _, c := range checks {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("Mean = %v, want 50.5", s.Mean())
	}
	if s.Count() != 100 {
		t.Errorf("Count = %d, want 100", s.Count())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Quantile(0.5) != 0 || s.Stddev() != 0 {
		t.Error("empty summary should return zeros")
	}
}

func TestSummaryStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", got)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestSummaryQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, r := range raw {
			s.Add(float64(r))
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		va, vb := s.Quantile(a), s.Quantile(b)
		return va <= vb+1e-9 && va >= s.Min()-1e-9 && vb <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(v)
	}
	want := []int{3, 1, 1, 0, 3}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, c, want[i], h.Counts())
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if got := h.BucketMid(0); got != 1 {
		t.Errorf("BucketMid(0) = %v, want 1", got)
	}
}

func TestLinRegSlope(t *testing.T) {
	r := NewLinReg(10)
	if _, ok := r.Slope(); ok {
		t.Error("slope of empty regression reported ok")
	}
	for i := 0; i < 5; i++ {
		r.Add(float64(i), 3*float64(i)+1)
	}
	slope, ok := r.Slope()
	if !ok || math.Abs(slope-3) > 1e-9 {
		t.Errorf("Slope = %v,%v want 3,true", slope, ok)
	}
}

func TestLinRegWindowEviction(t *testing.T) {
	r := NewLinReg(3)
	// Old points with slope -1 must be evicted by new points with slope +2.
	r.Add(0, 10)
	r.Add(1, 9)
	r.Add(2, 8)
	r.Add(10, 0)
	r.Add(11, 2)
	r.Add(12, 4)
	slope, ok := r.Slope()
	if !ok || math.Abs(slope-2) > 1e-9 {
		t.Errorf("Slope after eviction = %v, want 2", slope)
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestLinRegZeroVariance(t *testing.T) {
	r := NewLinReg(5)
	r.Add(1, 1)
	r.Add(1, 2)
	if _, ok := r.Slope(); ok {
		t.Error("zero x-variance should report !ok")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(1.0)
	m.Add(0.0, 500)
	m.Add(0.5, 500)
	m.Add(1.0, 500)
	// At t=1.0 the window [0,1] holds all 1500 units over span 1.0.
	got := m.Rate(1.0)
	if math.Abs(got-1500) > 1 {
		t.Errorf("Rate(1.0) = %v, want ~1500", got)
	}
	// At t=2.0 only the t=1.0 sample remains.
	got = m.Rate(2.0)
	if got > 1001 || got <= 0 {
		t.Errorf("Rate(2.0) = %v, want (0, ~1000]", got)
	}
	// Far future: empty window.
	if got := m.Rate(10); got != 0 {
		t.Errorf("Rate(10) = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
	if ClampInt(5, 0, 10) != 5 || ClampInt(-1, 0, 10) != 0 || ClampInt(11, 0, 10) != 10 {
		t.Error("ClampInt misbehaves")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed PRNGs diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandLogNormalMean(t *testing.T) {
	r := NewRand(1)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.LogNormal(100, 0.3)
	}
	mean := sum / n
	if math.Abs(mean-100) > 3 {
		t.Errorf("LogNormal mean = %v, want ~100", mean)
	}
	if r.LogNormal(100, 0) != 100 {
		t.Error("cv=0 should return the mean exactly")
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(7)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	n := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("Bool(0.25) frequency = %v", frac)
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if r.Jitter(100, 0) != 100 {
		t.Error("zero-amp jitter changed value")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(5)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Float64() == s2.Float64() && s1.Float64() == s2.Float64() {
		t.Error("split streams look identical")
	}
}

func TestRandExponentialMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exponential(50)
	}
	if m := sum / n; math.Abs(m-50) > 2 {
		t.Errorf("Exponential mean = %v, want ~50", m)
	}
	if r.Exponential(0) != 0 {
		t.Error("Exponential(0) should be 0")
	}
}

func TestWindowedMax(t *testing.T) {
	w := NewWindowedMax(3)
	cases := []struct{ in, want float64 }{
		{5, 5}, {3, 5}, {4, 5}, {6, 6}, {2, 6}, {1, 6}, {0, 2},
	}
	for i, c := range cases {
		if got := w.Update(c.in); got != c.want {
			t.Errorf("step %d: Update(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
	empty := NewWindowedMax(4)
	if !math.IsInf(empty.Max(), -1) {
		t.Errorf("empty Max = %v, want -Inf", empty.Max())
	}
}

// Property: windowed max equals brute-force max of last N samples.
func TestWindowedMaxProperty(t *testing.T) {
	f := func(raw []int16) bool {
		const n = 5
		w := NewWindowedMax(n)
		hist := []float64{}
		for _, r := range raw {
			v := float64(r)
			hist = append(hist, v)
			got := w.Update(v)
			hi := math.Inf(-1)
			start := len(hist) - n
			if start < 0 {
				start = 0
			}
			for _, h := range hist[start:] {
				hi = math.Max(hi, h)
			}
			if got != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
