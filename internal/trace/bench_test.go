package trace

import (
	"testing"
	"time"
)

func BenchmarkRateAt(b *testing.B) {
	tr := LTE(1, 600*time.Second, LTEConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RateAt(time.Duration(i%600000) * time.Millisecond)
	}
}
