package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"rtcadapt/internal/units"
)

// WriteCSV writes the trace as "seconds,bps" rows with a header line.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "bps"}); err != nil {
		return err
	}
	for _, p := range t.points {
		rec := []string{
			strconv.FormatFloat(p.At.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(float64(p.Bps), 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any "seconds,bps" CSV with
// an optional header row).
func ReadCSV(name string, r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var points []Point
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "seconds" {
			continue // header
		}
		sec, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad seconds %q", line, rec[0])
		}
		bps, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad bps %q", line, rec[1])
		}
		points = append(points, Point{At: time.Duration(sec * float64(time.Second)), Bps: units.BitsPerSec(bps)})
	}
	return New(name, points...)
}
