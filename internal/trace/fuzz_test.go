package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary CSV input never panics the trace parser,
// and accepted traces satisfy the trace invariants.
func FuzzReadCSV(f *testing.F) {
	f.Add("seconds,bps\n0,1000000\n1.5,500000\n")
	f.Add("0,1\n")
	f.Add("")
	f.Add("seconds,bps\nx,y\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		pts := tr.Points()
		if len(pts) == 0 {
			t.Fatal("accepted trace with no points")
		}
		if pts[0].At != 0 {
			t.Fatal("accepted trace not starting at 0")
		}
		for i, p := range pts {
			if p.Bps <= 0 {
				t.Fatalf("accepted non-positive rate at %d", i)
			}
			if i > 0 && pts[i-1].At >= p.At {
				t.Fatal("accepted non-increasing breakpoints")
			}
		}
	})
}
