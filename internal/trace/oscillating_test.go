package trace

import (
	"testing"
	"time"

	"rtcadapt/internal/units"
)

// TestOscillatingPhaseRegression pins the high/low alternation across many
// half-periods. The original implementation derived the next level by
// float-comparing the previous level against hi, which floateq flagged;
// the phase is now tracked with a boolean and this test guards the
// rewrite.
func TestOscillatingPhaseRegression(t *testing.T) {
	const hi, lo units.BitsPerSec = 3.7e6, 1.1e6
	half := 250 * time.Millisecond
	tr := Oscillating(hi, lo, half, 20*time.Second)
	for i := 0; i < 80; i++ {
		at := time.Duration(i)*half + half/2
		want := hi
		if i%2 == 1 {
			want = lo
		}
		if bps, _ := tr.RateAt(at); bps != want {
			t.Fatalf("half-period %d: RateAt(%v) = %v, want %v", i, at, bps, want)
		}
	}
}

// TestOscillatingEqualLevels covers the hi == lo edge case, where a
// level-comparison phase toggle degenerates but an explicit phase bit
// must still produce one breakpoint per half-period.
func TestOscillatingEqualLevels(t *testing.T) {
	tr := Oscillating(2e6, 2e6, time.Second, 4*time.Second)
	pts := tr.Points()
	if len(pts) != 4 {
		t.Fatalf("got %d breakpoints, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Bps != 2e6 {
			t.Errorf("breakpoint %d: Bps = %v, want 2e6", i, p.Bps)
		}
	}
}
