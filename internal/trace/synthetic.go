package trace

import (
	"time"

	"rtcadapt/internal/stats"

	"rtcadapt/internal/units"
)

// LTEConfig parameterizes the synthetic cellular capacity model.
type LTEConfig struct {
	// Mean is the long-run mean capacity in bits/s. Default 3 Mbps.
	Mean float64
	// Step is the sampling granularity. Default 200 ms.
	Step time.Duration
	// FadeProb is the per-step probability of entering a deep fade
	// (signal loss / cell-edge episode). Default 0.01.
	FadeProb float64
	// FadeDepth is the multiplicative capacity factor during a fade.
	// Default 0.25.
	FadeDepth float64
	// FadeHold is the mean fade duration. Default 2 s.
	FadeHold time.Duration
	// Sigma is the per-step lognormal variation (coefficient of
	// variation) of the slow-fading process. Default 0.15.
	Sigma float64
}

func (c *LTEConfig) defaults() {
	if c.Mean == 0 {
		c.Mean = 3e6
	}
	if c.Step == 0 {
		c.Step = 200 * time.Millisecond
	}
	if c.FadeProb == 0 {
		c.FadeProb = 0.01
	}
	if c.FadeDepth == 0 {
		c.FadeDepth = 0.25
	}
	if c.FadeHold == 0 {
		c.FadeHold = 2 * time.Second
	}
	if c.Sigma == 0 {
		c.Sigma = 0.15
	}
}

// LTE generates a synthetic cellular capacity trace: an AR(1) slow-fading
// process around the mean, punctuated by deep-fade episodes that reproduce
// the sudden bandwidth drops the paper targets (handover, cell edge).
func LTE(seed int64, dur time.Duration, cfg LTEConfig) *Trace {
	cfg.defaults()
	rng := stats.NewRand(seed)
	var ps []Point
	level := cfg.Mean
	fadeLeft := time.Duration(0)
	const ar = 0.9 // AR(1) pull toward the mean
	for at := time.Duration(0); at < dur; at += cfg.Step {
		level = ar*level + (1-ar)*cfg.Mean
		level = rng.Jitter(level, cfg.Sigma)
		level = stats.Clamp(level, 0.1*cfg.Mean, 3*cfg.Mean)
		bps := level
		if fadeLeft > 0 {
			bps = level * cfg.FadeDepth
			fadeLeft -= cfg.Step
		} else if rng.Bool(cfg.FadeProb) {
			fadeLeft = time.Duration(rng.Exponential(float64(cfg.FadeHold)))
			bps = level * cfg.FadeDepth
		}
		ps = append(ps, Point{At: at, Bps: units.BitsPerSec(bps)})
	}
	return MustNew("lte", ps...)
}

// WiFiConfig parameterizes the synthetic WiFi capacity model.
type WiFiConfig struct {
	// Mean is the long-run mean capacity in bits/s. Default 8 Mbps.
	Mean float64
	// Step is the sampling granularity. Default 100 ms.
	Step time.Duration
	// ContentionProb is the per-step probability of a contention burst
	// (a competing station grabbing airtime). Default 0.05.
	ContentionProb float64
	// ContentionDepth is the capacity factor during contention.
	// Default 0.4.
	ContentionDepth float64
	// Sigma is per-step variation. Default 0.25 (WiFi is noisier than
	// LTE at short timescales).
	Sigma float64
}

func (c *WiFiConfig) defaults() {
	if c.Mean == 0 {
		c.Mean = 8e6
	}
	if c.Step == 0 {
		c.Step = 100 * time.Millisecond
	}
	if c.ContentionProb == 0 {
		c.ContentionProb = 0.05
	}
	if c.ContentionDepth == 0 {
		c.ContentionDepth = 0.4
	}
	if c.Sigma == 0 {
		c.Sigma = 0.25
	}
}

// WiFi generates a synthetic WLAN capacity trace: high mean, short noisy
// excursions, and brief contention dips rather than LTE's long fades.
func WiFi(seed int64, dur time.Duration, cfg WiFiConfig) *Trace {
	cfg.defaults()
	rng := stats.NewRand(seed)
	var ps []Point
	for at := time.Duration(0); at < dur; at += cfg.Step {
		bps := rng.Jitter(cfg.Mean, cfg.Sigma)
		if rng.Bool(cfg.ContentionProb) {
			bps *= cfg.ContentionDepth
		}
		bps = stats.Clamp(bps, 0.05*cfg.Mean, 2*cfg.Mean)
		ps = append(ps, Point{At: at, Bps: units.BitsPerSec(bps)})
	}
	return MustNew("wifi", ps...)
}

// RandomWalk generates a bounded multiplicative random walk, useful for
// stress-testing estimators.
func RandomWalk(seed int64, dur, step time.Duration, start, lo, hi float64) *Trace {
	if step <= 0 {
		panic("trace: RandomWalk step must be positive")
	}
	rng := stats.NewRand(seed)
	var ps []Point
	level := start
	for at := time.Duration(0); at < dur; at += step {
		level = stats.Clamp(rng.Jitter(level, 0.1), lo, hi)
		ps = append(ps, Point{At: at, Bps: units.BitsPerSec(level)})
	}
	return MustNew("randomwalk", ps...)
}
