// Package trace models time-varying bottleneck capacity as piecewise-
// constant traces. Traces drive the netem link and double as the ground
// truth for the oracle estimator.
//
// A trace is an ordered list of (at, bps) breakpoints; the rate at time t is
// the bps of the last breakpoint at or before t. Synthetic generators cover
// the scenarios in the paper's evaluation: sudden step drops, staircases,
// oscillation, and LTE/WiFi-like capacity processes.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"rtcadapt/internal/stats"
	"rtcadapt/internal/units"
)

// Forever marks a segment with no later breakpoint.
const Forever = time.Duration(math.MaxInt64)

// Point is one breakpoint: from At onward the capacity is Bps.
type Point struct {
	At  time.Duration
	Bps units.BitsPerSec
}

// Trace is an immutable piecewise-constant capacity function. The zero value
// is invalid; use the constructors.
type Trace struct {
	name   string
	points []Point
}

// New builds a trace from breakpoints. Points are sorted by time; the first
// breakpoint must be at time zero so the rate is defined everywhere, and all
// rates must be positive.
func New(name string, points ...Point) (*Trace, error) {
	if len(points) == 0 {
		return nil, errors.New("trace: no points")
	}
	ps := make([]Point, len(points))
	copy(ps, points)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].At < ps[j].At })
	if ps[0].At != 0 {
		return nil, fmt.Errorf("trace: first breakpoint at %v, want 0", ps[0].At)
	}
	for i, p := range ps {
		// !(p.Bps > 0) rather than p.Bps <= 0: NaN compares false both
		// ways and would sail through a <= check, then poison every
		// serialization deadline downstream in netem.
		if !(p.Bps > 0) || math.IsInf(float64(p.Bps), 1) {
			return nil, fmt.Errorf("trace: rate %v at %v is not a positive finite number", float64(p.Bps), p.At)
		}
		if i > 0 && ps[i-1].At == p.At {
			return nil, fmt.Errorf("trace: duplicate breakpoint at %v", p.At)
		}
	}
	return &Trace{name: name, points: ps}, nil
}

// MustNew is New but panics on error; for use with literal points.
func MustNew(name string, points ...Point) *Trace {
	tr, err := New(name, points...)
	if err != nil {
		panic(err)
	}
	return tr
}

// Name returns the trace's descriptive name.
func (t *Trace) Name() string { return t.name }

// Points returns a copy of the breakpoints.
func (t *Trace) Points() []Point {
	out := make([]Point, len(t.points))
	copy(out, t.points)
	return out
}

// RateAt returns the capacity in bits/s at time at, plus the time of the
// next breakpoint (Forever if none). at must be non-negative.
func (t *Trace) RateAt(at time.Duration) (bps units.BitsPerSec, validUntil time.Duration) {
	if at < 0 {
		at = 0
	}
	// Binary search for the last point with At <= at.
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].At > at }) - 1
	if i < 0 {
		i = 0
	}
	next := Forever
	if i+1 < len(t.points) {
		next = t.points[i+1].At
	}
	return t.points[i].Bps, next
}

// MeanRate returns the time-weighted mean capacity over [from, to).
func (t *Trace) MeanRate(from, to time.Duration) units.BitsPerSec {
	if to <= from {
		return 0
	}
	var bits float64
	cur := from
	for cur < to {
		bps, next := t.RateAt(cur)
		end := to
		if next < end {
			end = next
		}
		bits += float64(bps) * (end - cur).Seconds()
		cur = end
	}
	return units.BitsPerSec(bits / (to - from).Seconds())
}

// MinRate returns the lowest capacity in [from, to).
func (t *Trace) MinRate(from, to time.Duration) units.BitsPerSec {
	lo := math.Inf(1)
	cur := from
	for cur < to {
		bps, next := t.RateAt(cur)
		lo = math.Min(lo, float64(bps))
		if next >= to {
			break
		}
		cur = next
	}
	return units.BitsPerSec(lo)
}

// Scale returns a new trace with every rate multiplied by factor.
func (t *Trace) Scale(factor float64) *Trace {
	if factor <= 0 {
		panic("trace: Scale factor must be positive")
	}
	ps := t.Points()
	for i := range ps {
		ps[i].Bps = ps[i].Bps.Scale(factor)
	}
	return &Trace{name: fmt.Sprintf("%s*%.2g", t.name, factor), points: ps}
}

// Clamp returns a new trace with every rate limited to [lo, hi].
func (t *Trace) Clamp(lo, hi units.BitsPerSec) *Trace {
	ps := t.Points()
	for i := range ps {
		ps[i].Bps = units.BitsPerSec(stats.Clamp(float64(ps[i].Bps), float64(lo), float64(hi)))
	}
	return &Trace{name: t.name + "#clamped", points: ps}
}

// Shift returns a new trace with all breakpoints delayed by d; the initial
// rate is extended backward to time zero.
func (t *Trace) Shift(d time.Duration) *Trace {
	if d < 0 {
		panic("trace: negative Shift")
	}
	ps := make([]Point, 0, len(t.points)+1)
	ps = append(ps, Point{At: 0, Bps: t.points[0].Bps})
	for _, p := range t.points {
		if p.At == 0 {
			continue
		}
		ps = append(ps, Point{At: p.At + d, Bps: p.Bps})
	}
	return &Trace{name: t.name + "#shifted", points: ps}
}

// Splice returns a trace equal to t before at and other (re-based to start
// at at) afterward.
func (t *Trace) Splice(at time.Duration, other *Trace) *Trace {
	var ps []Point
	for _, p := range t.points {
		if p.At >= at {
			break
		}
		ps = append(ps, p)
	}
	for _, p := range other.points {
		ps = append(ps, Point{At: at + p.At, Bps: p.Bps})
	}
	return &Trace{name: t.name + "+" + other.name, points: ps}
}

// Constant returns a trace with a fixed capacity.
func Constant(bps units.BitsPerSec) *Trace {
	return MustNew(fmt.Sprintf("const-%.0fbps", float64(bps)), Point{At: 0, Bps: bps})
}

// StepDrop returns the paper's motivating scenario: capacity before until
// dropAt, then capacity after.
func StepDrop(before, after units.BitsPerSec, dropAt time.Duration) *Trace {
	return MustNew(
		fmt.Sprintf("drop-%.1f-to-%.1fMbps", before.Mbps(), after.Mbps()),
		Point{At: 0, Bps: before},
		Point{At: dropAt, Bps: after},
	)
}

// StepDropRecover is StepDrop with capacity restored to before at
// recoverAt.
func StepDropRecover(before, after units.BitsPerSec, dropAt, recoverAt time.Duration) *Trace {
	if recoverAt <= dropAt {
		panic("trace: recoverAt must follow dropAt")
	}
	return MustNew(
		fmt.Sprintf("droprec-%.1f-to-%.1fMbps", before.Mbps(), after.Mbps()),
		Point{At: 0, Bps: before},
		Point{At: dropAt, Bps: after},
		Point{At: recoverAt, Bps: before},
	)
}

// Staircase returns a trace that steps through the given rates, holding
// each for hold.
func Staircase(hold time.Duration, rates ...units.BitsPerSec) *Trace {
	if len(rates) == 0 {
		panic("trace: Staircase needs at least one rate")
	}
	ps := make([]Point, len(rates))
	for i, r := range rates {
		ps[i] = Point{At: time.Duration(i) * hold, Bps: r}
	}
	return MustNew("staircase", ps...)
}

// Oscillating returns a square wave alternating between hi and lo with the
// given half-period, for the given duration.
func Oscillating(hi, lo units.BitsPerSec, halfPeriod, dur time.Duration) *Trace {
	var ps []Point
	atHi := true
	for at := time.Duration(0); at < dur; at += halfPeriod {
		level := lo
		if atHi {
			level = hi
		}
		ps = append(ps, Point{At: at, Bps: level})
		atHi = !atHi
	}
	return MustNew("oscillating", ps...)
}
