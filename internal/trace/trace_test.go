package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rtcadapt/internal/units"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		points []Point
		ok     bool
	}{
		{"empty", nil, false},
		{"no-zero-start", []Point{{At: time.Second, Bps: 1e6}}, false},
		{"negative-rate", []Point{{At: 0, Bps: -1}}, false},
		{"zero-rate", []Point{{At: 0, Bps: 0}}, false},
		{"duplicate", []Point{{At: 0, Bps: 1}, {At: 0, Bps: 2}}, false},
		// NaN compares false against any threshold, so a naive Bps <= 0
		// check admits it; these pin the !(Bps > 0) form.
		{"nan-rate", []Point{{At: 0, Bps: units.BitsPerSec(math.NaN())}}, false},
		{"pos-inf-rate", []Point{{At: 0, Bps: units.BitsPerSec(math.Inf(1))}}, false},
		{"neg-inf-rate", []Point{{At: 0, Bps: units.BitsPerSec(math.Inf(-1))}}, false},
		{"valid", []Point{{At: 0, Bps: 1e6}, {At: time.Second, Bps: 2e6}}, true},
		{"unsorted-valid", []Point{{At: time.Second, Bps: 2e6}, {At: 0, Bps: 1e6}}, true},
	}
	for _, c := range cases {
		_, err := New(c.name, c.points...)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestRateAt(t *testing.T) {
	tr := StepDrop(2.5e6, 0.8e6, 10*time.Second)
	cases := []struct {
		at        time.Duration
		wantBps   units.BitsPerSec
		wantUntil time.Duration
	}{
		{0, 2.5e6, 10 * time.Second},
		{5 * time.Second, 2.5e6, 10 * time.Second},
		{10 * time.Second, 0.8e6, Forever},
		{20 * time.Second, 0.8e6, Forever},
		{-time.Second, 2.5e6, 10 * time.Second},
	}
	for _, c := range cases {
		bps, until := tr.RateAt(c.at)
		if bps != c.wantBps || until != c.wantUntil {
			t.Errorf("RateAt(%v) = %v,%v want %v,%v", c.at, bps, until, c.wantBps, c.wantUntil)
		}
	}
}

func TestMeanRate(t *testing.T) {
	tr := StepDrop(2e6, 1e6, 5*time.Second)
	got := tr.MeanRate(0, 10*time.Second)
	if math.Abs(float64(got)-1.5e6) > 1 {
		t.Errorf("MeanRate = %v, want 1.5e6", got)
	}
	if tr.MeanRate(5*time.Second, 5*time.Second) != 0 {
		t.Error("empty interval should return 0")
	}
}

func TestMinRate(t *testing.T) {
	tr := Staircase(time.Second, 3e6, 1e6, 2e6)
	if got := tr.MinRate(0, 3*time.Second); got != 1e6 {
		t.Errorf("MinRate = %v, want 1e6", got)
	}
	if got := tr.MinRate(0, 500*time.Millisecond); got != 3e6 {
		t.Errorf("MinRate first segment = %v, want 3e6", got)
	}
}

func TestScaleClampShift(t *testing.T) {
	tr := Constant(1e6)
	if bps, _ := tr.Scale(2).RateAt(0); bps != 2e6 {
		t.Errorf("Scale: %v", bps)
	}
	if bps, _ := tr.Clamp(0, 0.5e6).RateAt(0); bps != 0.5e6 {
		t.Errorf("Clamp: %v", bps)
	}
	sh := StepDrop(2e6, 1e6, time.Second).Shift(500 * time.Millisecond)
	if bps, _ := sh.RateAt(time.Second); bps != 2e6 {
		t.Errorf("Shift: rate at 1s = %v, want 2e6 (drop moved to 1.5s)", bps)
	}
	if bps, _ := sh.RateAt(2 * time.Second); bps != 1e6 {
		t.Errorf("Shift: rate at 2s = %v, want 1e6", bps)
	}
}

func TestSplice(t *testing.T) {
	a := Constant(3e6)
	b := StepDrop(2e6, 1e6, time.Second)
	sp := a.Splice(10*time.Second, b)
	checks := []struct {
		at   time.Duration
		want units.BitsPerSec
	}{
		{0, 3e6},
		{9 * time.Second, 3e6},
		{10 * time.Second, 2e6},
		{11 * time.Second, 1e6},
	}
	for _, c := range checks {
		if bps, _ := sp.RateAt(c.at); bps != c.want {
			t.Errorf("Splice RateAt(%v) = %v, want %v", c.at, bps, c.want)
		}
	}
}

func TestOscillating(t *testing.T) {
	tr := Oscillating(2e6, 1e6, time.Second, 4*time.Second)
	for i := 0; i < 4; i++ {
		at := time.Duration(i)*time.Second + 500*time.Millisecond
		want := units.BitsPerSec(2e6)
		if i%2 == 1 {
			want = 1e6
		}
		if bps, _ := tr.RateAt(at); bps != want {
			t.Errorf("Oscillating RateAt(%v) = %v, want %v", at, bps, want)
		}
	}
}

func TestLTEDeterministicAndBounded(t *testing.T) {
	a := LTE(42, 30*time.Second, LTEConfig{})
	b := LTE(42, 30*time.Second, LTEConfig{})
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	cfg := LTEConfig{}
	cfg.defaults()
	for _, p := range pa {
		// Deep fades can push rate to FadeDepth * clamped level.
		if p.Bps < units.BitsPerSec(0.1*cfg.Mean*cfg.FadeDepth-1) || p.Bps > units.BitsPerSec(3*cfg.Mean+1) {
			t.Fatalf("LTE rate %v out of bounds at %v", p.Bps, p.At)
		}
	}
	c := LTE(43, 30*time.Second, LTEConfig{})
	if c.MeanRate(0, 30*time.Second) == a.MeanRate(0, 30*time.Second) {
		t.Error("different seeds produced identical mean (suspicious)")
	}
}

func TestLTEHasFades(t *testing.T) {
	cfg := LTEConfig{FadeProb: 0.05}
	tr := LTE(7, 60*time.Second, cfg)
	cfg.defaults()
	min := tr.MinRate(0, 60*time.Second)
	if min > units.BitsPerSec(0.5*cfg.Mean) {
		t.Errorf("LTE trace with FadeProb=0.05 never faded: min=%v mean=%v", min, cfg.Mean)
	}
}

func TestWiFiBounds(t *testing.T) {
	cfg := WiFiConfig{}
	tr := WiFi(5, 30*time.Second, cfg)
	cfg.defaults()
	for _, p := range tr.Points() {
		if p.Bps < units.BitsPerSec(0.05*cfg.Mean-1) || p.Bps > units.BitsPerSec(2*cfg.Mean+1) {
			t.Fatalf("WiFi rate %v out of bounds", p.Bps)
		}
	}
}

func TestRandomWalkBounds(t *testing.T) {
	tr := RandomWalk(3, 10*time.Second, 100*time.Millisecond, 1e6, 0.5e6, 2e6)
	for _, p := range tr.Points() {
		if p.Bps < 0.5e6 || p.Bps > 2e6 {
			t.Fatalf("RandomWalk escaped bounds: %v", p.Bps)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := StepDropRecover(2.5e6, 0.8e6, 10*time.Second, 20*time.Second)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV("rt", &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	po, pg := orig.Points(), got.Points()
	if len(po) != len(pg) {
		t.Fatalf("round trip changed point count: %d -> %d", len(po), len(pg))
	}
	for i := range po {
		if math.Abs(float64(po[i].Bps-pg[i].Bps)) > 0.5 {
			t.Errorf("point %d bps %v -> %v", i, po[i].Bps, pg[i].Bps)
		}
		if d := po[i].At - pg[i].At; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("point %d at %v -> %v", i, po[i].At, pg[i].At)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"seconds,bps\nx,100\n",
		"seconds,bps\n1.0,y\n",
		"seconds,bps\n1.0\n",
		"", // no points
	}
	for i, in := range cases {
		if _, err := ReadCSV("bad", strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tr, err := ReadCSV("nh", strings.NewReader("0,1000000\n1.5,500000\n"))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if bps, _ := tr.RateAt(2 * time.Second); bps != 500000 {
		t.Errorf("rate = %v, want 500000", bps)
	}
}

// Property: MeanRate is always within [MinRate, max rate] of the window.
func TestMeanWithinBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := RandomWalk(seed, 10*time.Second, 250*time.Millisecond, 1e6, 0.2e6, 5e6)
		mean := tr.MeanRate(0, 10*time.Second)
		lo := tr.MinRate(0, 10*time.Second)
		hi := units.BitsPerSec(0)
		for _, p := range tr.Points() {
			hi = units.BitsPerSec(math.Max(float64(hi), float64(p.Bps)))
		}
		return mean >= lo-1 && mean <= hi+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RateAt's validUntil is consistent — the rate is constant on
// [at, validUntil).
func TestRateSegmentConsistencyProperty(t *testing.T) {
	f := func(seed int64, atMs uint16) bool {
		tr := LTE(seed, 20*time.Second, LTEConfig{})
		at := time.Duration(atMs) * time.Millisecond
		bps, until := tr.RateAt(at)
		if until == Forever {
			return true
		}
		mid := at + (until-at)/2
		bps2, _ := tr.RateAt(mid)
		return bps2 == bps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
