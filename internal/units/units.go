// Package units defines dimensioned numeric types for the quantities
// the adaptive pipeline passes around — data sizes (bits, bytes) and
// data rates (bits per second) — so the type checker and the unitflow
// analyzer can prove that bits never meet bytes and rates never meet
// sizes without an explicit conversion.
//
// Conventions (enforced by unitflow; see DESIGN.md §13):
//
//   - A quantity crosses a package boundary as a units type; internal
//     float scratch math converts once at the boundary with float64(x)
//     and converts back when done. float64(x) deliberately erases the
//     unit — it is the laundering point, and keeping it rare keeps the
//     analysis meaningful.
//   - Dimensionless factors (pacing gain, margins, FEC overhead) apply
//     to rates through Scale, never through raw multiplication.
//   - Untyped constants may initialize unit-typed fields directly
//     (Rate: 1e6); Go's assignment typing dresses the constant. A bare
//     literal meeting a unit-typed operand inside arithmetic is flagged.
//
// This package is foundation-layer: it imports nothing module-internal
// and everything above it may import it.
package units

import (
	"fmt"
	"time"
)

// Bits is a data size in bits.
type Bits int64

// Bytes is a data size in bytes.
type Bytes int64

// BitsPerSec is a data rate in bits per second. float64 underlying:
// every estimator and trace computes rates in floating point.
type BitsPerSec float64

// Bytes converts a bit count to whole bytes, rounding up.
func (b Bits) Bytes() Bytes { return Bytes((b + 7) / 8) }

// Bits converts a byte count to bits.
func (b Bytes) Bits() Bits { return Bits(b) * 8 }

// Kbps returns a rate of v kilobits per second.
func Kbps(v float64) BitsPerSec { return BitsPerSec(v * 1e3) }

// Mbps returns a rate of v megabits per second.
func Mbps(v float64) BitsPerSec { return BitsPerSec(v * 1e6) }

// Kbps returns the rate in kilobits per second as a bare float.
func (r BitsPerSec) Kbps() float64 { return float64(r) / 1e3 }

// Mbps returns the rate in megabits per second as a bare float.
func (r BitsPerSec) Mbps() float64 { return float64(r) / 1e6 }

// Scale multiplies the rate by a dimensionless factor (pacing gain,
// safety margin, FEC overhead correction). This is the blessed way to
// apply a factor to a rate; unitflow flags raw multiplication.
func (r BitsPerSec) Scale(f float64) BitsPerSec { return BitsPerSec(float64(r) * f) }

// DurationToSend returns the serialization time of b bits at rate r.
// The arithmetic (bits / rate, widened through float64 seconds) matches
// the pre-units pacer and netem formulas bit for bit.
func (r BitsPerSec) DurationToSend(b Bits) time.Duration {
	return time.Duration(float64(b) / float64(r) * float64(time.Second))
}

// Over returns how many bits pass at rate r during d, truncated.
func (r BitsPerSec) Over(d time.Duration) Bits {
	return Bits(float64(r) * d.Seconds())
}

// String formats the rate with an adaptive Mbps/kbps/bps suffix.
func (r BitsPerSec) String() string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fMbps", r.Mbps())
	case r >= 1e3:
		return fmt.Sprintf("%.1fkbps", r.Kbps())
	default:
		return fmt.Sprintf("%.0fbps", float64(r))
	}
}
