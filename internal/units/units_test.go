package units

import (
	"testing"
	"time"
)

func TestBitsBytesRoundTrip(t *testing.T) {
	if got := Bytes(1200).Bits(); got != 9600 {
		t.Fatalf("Bytes(1200).Bits() = %d, want 9600", got)
	}
	if got := Bits(9600).Bytes(); got != 1200 {
		t.Fatalf("Bits(9600).Bytes() = %d, want 1200", got)
	}
	// Rounding up: 9 bits needs 2 bytes on the wire.
	if got := Bits(9).Bytes(); got != 2 {
		t.Fatalf("Bits(9).Bytes() = %d, want 2", got)
	}
	if got := Bits(0).Bytes(); got != 0 {
		t.Fatalf("Bits(0).Bytes() = %d, want 0", got)
	}
}

func TestRateConstructorsAndAccessors(t *testing.T) {
	r := Mbps(2.5)
	if r != 2.5e6 {
		t.Fatalf("Mbps(2.5) = %v, want 2.5e6", float64(r))
	}
	if got := r.Mbps(); got != 2.5 {
		t.Fatalf("Mbps accessor = %v, want 2.5", got)
	}
	if got := Kbps(300); got != 3e5 {
		t.Fatalf("Kbps(300) = %v, want 3e5", float64(got))
	}
	if got := Kbps(300).Kbps(); got != 300 {
		t.Fatalf("Kbps accessor = %v, want 300", got)
	}
}

func TestScaleMatchesRawMultiply(t *testing.T) {
	r := BitsPerSec(1.37e6)
	for _, f := range []float64{0.5, 0.85, 1.0, 1.25, 2.0} {
		if got, want := r.Scale(f), BitsPerSec(float64(r)*f); got != want {
			t.Fatalf("Scale(%v) = %v, want %v", f, float64(got), float64(want))
		}
	}
}

// The serialization-delay formula must match the historical pacer and
// netem expression time.Duration(float64(bits)/rate*float64(time.Second))
// bit for bit, or every golden trace in the repo shifts.
func TestDurationToSendMatchesLegacyFormula(t *testing.T) {
	cases := []struct {
		bytes int
		rate  float64
	}{
		{1200, 1e6},
		{1200, 1.5e6},
		{64, 50e3},
		{65535, 20e6},
		{1, 333},
	}
	for _, c := range cases {
		legacy := time.Duration(float64(c.bytes*8) / c.rate * float64(time.Second))
		got := BitsPerSec(c.rate).DurationToSend(Bytes(c.bytes).Bits())
		if got != legacy {
			t.Fatalf("DurationToSend(%d bytes @ %v bps) = %v, legacy %v",
				c.bytes, c.rate, got, legacy)
		}
	}
}

func TestOver(t *testing.T) {
	if got := Mbps(1).Over(time.Second); got != 1_000_000 {
		t.Fatalf("1Mbps over 1s = %d bits, want 1000000", got)
	}
	if got := Mbps(1).Over(33 * time.Millisecond); got != 33_000 {
		t.Fatalf("1Mbps over 33ms = %d bits, want 33000", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		r    BitsPerSec
		want string
	}{
		{Mbps(2.5), "2.50Mbps"},
		{Kbps(300), "300.0kbps"},
		{BitsPerSec(42), "42bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Fatalf("String(%v) = %q, want %q", float64(c.r), got, c.want)
		}
	}
}
