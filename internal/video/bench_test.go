package video

import "testing"

func BenchmarkSourceNext(b *testing.B) {
	s := NewSource(SourceConfig{Class: Sports, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
