package video

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// TraceSource replays per-frame complexity from a recorded trace (e.g.
// converted from x264 stats logs), cycling when the trace is shorter than
// the session. It satisfies the same Next/Take surface as Source.
type TraceSource struct {
	frames []Frame
	fps    int
	index  int
}

// NewTraceSource wraps recorded frames. fps <= 0 defaults to 30. The
// frames' Index/PTS fields are reassigned on replay; Spatial, Temporal and
// SceneCut are used as recorded.
func NewTraceSource(frames []Frame, fps int) (*TraceSource, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("video: empty frame trace")
	}
	if fps <= 0 {
		fps = 30
	}
	for i, f := range frames {
		if f.Spatial <= 0 || f.Temporal <= 0 {
			return nil, fmt.Errorf("video: frame %d has non-positive complexity", i)
		}
	}
	return &TraceSource{frames: frames, fps: fps}, nil
}

// FPS returns the replay rate.
func (s *TraceSource) FPS() int { return s.fps }

// FrameInterval returns the replay period.
func (s *TraceSource) FrameInterval() time.Duration {
	return time.Duration(float64(time.Second) / float64(s.fps))
}

// Len returns the recorded trace length in frames.
func (s *TraceSource) Len() int { return len(s.frames) }

// Next produces the next frame, cycling through the recording.
func (s *TraceSource) Next() Frame {
	f := s.frames[s.index%len(s.frames)]
	f.Index = s.index
	f.PTS = time.Duration(s.index) * s.FrameInterval()
	if s.index >= len(s.frames) && s.index%len(s.frames) == 0 {
		// A wrap is a content discontinuity.
		f.SceneCut = true
	}
	s.index++
	return f
}

// Take returns the next n frames.
func (s *TraceSource) Take(n int) []Frame {
	out := make([]Frame, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// WriteCSV writes frames as "spatial,temporal,scenecut" rows with a
// header.
func WriteCSV(w io.Writer, frames []Frame) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"spatial", "temporal", "scenecut"}); err != nil {
		return err
	}
	for _, f := range frames {
		cut := "0"
		if f.SceneCut {
			cut = "1"
		}
		rec := []string{
			strconv.FormatFloat(f.Spatial, 'f', 2, 64),
			strconv.FormatFloat(f.Temporal, 'f', 2, 64),
			cut,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses frames written by WriteCSV (header optional).
func ReadCSV(r io.Reader) ([]Frame, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var frames []Frame
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("video: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "spatial" {
			continue
		}
		spatial, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("video: csv line %d: bad spatial %q", line, rec[0])
		}
		temporal, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("video: csv line %d: bad temporal %q", line, rec[1])
		}
		frames = append(frames, Frame{
			Spatial:  spatial,
			Temporal: temporal,
			SceneCut: rec[2] == "1",
		})
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("video: empty csv")
	}
	return frames, nil
}
