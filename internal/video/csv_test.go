package video

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := NewSource(SourceConfig{Class: Gaming, Seed: 1}).Take(50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip changed count: %d -> %d", len(orig), len(got))
	}
	for i := range got {
		if got[i].SceneCut != orig[i].SceneCut {
			t.Errorf("frame %d scenecut mismatch", i)
		}
		if d := got[i].Spatial - orig[i].Spatial; d < -0.01 || d > 0.01 {
			t.Errorf("frame %d spatial %v -> %v", i, orig[i].Spatial, got[i].Spatial)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"spatial,temporal,scenecut\n",
		"x,1,0\n",
		"1,y,0\n",
		"1,2\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTraceSourceReplayAndCycle(t *testing.T) {
	base := []Frame{
		{Spatial: 100, Temporal: 10},
		{Spatial: 200, Temporal: 20},
		{Spatial: 300, Temporal: 30},
	}
	src, err := NewTraceSource(base, 30)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 3 || src.FPS() != 30 {
		t.Fatal("metadata")
	}
	fs := src.Take(7)
	for i, f := range fs {
		if f.Index != i {
			t.Errorf("frame %d index %d", i, f.Index)
		}
		if f.PTS != time.Duration(i)*src.FrameInterval() {
			t.Errorf("frame %d pts %v", i, f.PTS)
		}
		if f.Spatial != base[i%3].Spatial {
			t.Errorf("frame %d spatial %v", i, f.Spatial)
		}
	}
	// The wrap points (index 3 and 6) are marked as scene cuts.
	if !fs[3].SceneCut || !fs[6].SceneCut {
		t.Error("trace wrap not marked as scene cut")
	}
	if fs[4].SceneCut {
		t.Error("non-wrap frame marked as cut")
	}
}

func TestTraceSourceValidation(t *testing.T) {
	if _, err := NewTraceSource(nil, 30); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceSource([]Frame{{Spatial: 0, Temporal: 1}}, 30); err == nil {
		t.Error("zero complexity accepted")
	}
	src, err := NewTraceSource([]Frame{{Spatial: 1, Temporal: 1}}, 0)
	if err != nil || src.FPS() != 30 {
		t.Error("fps default")
	}
}
