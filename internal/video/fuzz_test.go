package video

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV ensures arbitrary CSV input never panics the frame-trace
// parser, and accepted traces survive a WriteCSV/ReadCSV round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("spatial,temporal,scenecut\n1.00,2.00,0\n3.50,0.25,1\n")
	f.Add("1,1,0\n")
	f.Add("")
	f.Add("spatial,temporal,scenecut\n")
	f.Add("x,y,z\n")
	f.Add("1,2\n")
	f.Add("1e308,1e-308,1\n")
	f.Fuzz(func(t *testing.T, input string) {
		frames, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(frames) == 0 {
			t.Fatal("accepted csv with no frames")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, frames); err != nil {
			t.Fatalf("re-encoding accepted frames: %v", err)
		}
		again, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parsing encoded frames: %v", err)
		}
		if len(again) != len(frames) {
			t.Fatalf("round trip changed frame count: %d -> %d", len(frames), len(again))
		}
		for i := range frames {
			if again[i].SceneCut != frames[i].SceneCut {
				t.Fatalf("round trip flipped scenecut at frame %d", i)
			}
		}
	})
}
