package video

import (
	"strings"
	"testing"
)

func TestSourceConfigValidate(t *testing.T) {
	if err := (&SourceConfig{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
	bad := []struct {
		name string
		cfg  SourceConfig
		want string
	}{
		{"negative fps", SourceConfig{FPS: -1}, "FPS"},
		{"unknown class", SourceConfig{Class: Class(99)}, "Class"},
	}
	for _, c := range bad {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted bad config", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestNewSourcePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSource accepted FPS -1")
		}
	}()
	NewSource(SourceConfig{FPS: -1})
}
