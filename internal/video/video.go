// Package video provides synthetic video sources. A source emits one
// complexity descriptor per captured frame; the codec package turns
// complexity into encoded bits and quality via its rate-distortion model.
//
// Complexity is expressed in SATD-like units (sum of absolute transformed
// differences), the same internal currency x264's rate control uses:
// Spatial is the intra-coding cost of the frame, Temporal the inter-coding
// (residual) cost given the previous frame. Scene cuts make Temporal
// approach Spatial, which is what triggers keyframe decisions.
package video

import (
	"fmt"
	"time"

	"rtcadapt/internal/stats"
)

// Frame describes one captured frame.
type Frame struct {
	// Index is the zero-based capture index.
	Index int
	// PTS is the capture timestamp.
	PTS time.Duration
	// Spatial is the intra-coding complexity (SATD units).
	Spatial float64
	// Temporal is the inter-coding complexity (SATD units). Always
	// <= Spatial except during noise; scene cuts push it near Spatial.
	Temporal float64
	// SceneCut marks a content discontinuity (an encoder would normally
	// insert an IDR here).
	SceneCut bool
}

// FrameSource is anything that emits capture frames at a fixed rate; both
// the synthetic Source and the CSV-backed TraceSource implement it.
type FrameSource interface {
	// Next produces the next frame with increasing Index and PTS.
	Next() Frame
	// FPS returns the capture rate.
	FPS() int
	// FrameInterval returns the capture period.
	FrameInterval() time.Duration
}

// Class identifies a content class with distinct complexity dynamics.
type Class int

// Content classes. Calibrated so that at 30 fps and the codec's reference
// quantizer, TalkingHead encodes around 1 Mbps and Sports around 3 Mbps.
const (
	// TalkingHead: low motion, rare scene changes (video call).
	TalkingHead Class = iota
	// ScreenShare: near-zero motion with abrupt full-frame changes
	// (slide flips).
	ScreenShare
	// Gaming: high motion, frequent moderate scene changes.
	Gaming
	// Sports: very high sustained motion, camera pans.
	Sports
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case TalkingHead:
		return "talking-head"
	case ScreenShare:
		return "screen-share"
	case Gaming:
		return "gaming"
	case Sports:
		return "sports"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classes lists all content classes.
func Classes() []Class { return []Class{TalkingHead, ScreenShare, Gaming, Sports} }

// params holds per-class generator parameters.
type params struct {
	spatialBase  float64 // mean intra complexity
	motionBase   float64 // mean temporal/spatial ratio
	motionSigma  float64 // jitter of the motion ratio
	sceneCutProb float64 // per-frame scene-cut probability
	ar           float64 // AR(1) coefficient for motion persistence
	spatialSigma float64 // per-frame spatial jitter
}

func classParams(c Class) params {
	switch c {
	case TalkingHead:
		return params{spatialBase: 12000, motionBase: 0.10, motionSigma: 0.3, sceneCutProb: 1.0 / 3000, ar: 0.95, spatialSigma: 0.05}
	case ScreenShare:
		return params{spatialBase: 9000, motionBase: 0.02, motionSigma: 0.5, sceneCutProb: 1.0 / 300, ar: 0.5, spatialSigma: 0.02}
	case Gaming:
		return params{spatialBase: 16000, motionBase: 0.30, motionSigma: 0.4, sceneCutProb: 1.0 / 600, ar: 0.85, spatialSigma: 0.10}
	case Sports:
		return params{spatialBase: 18000, motionBase: 0.45, motionSigma: 0.3, sceneCutProb: 1.0 / 900, ar: 0.90, spatialSigma: 0.12}
	}
	panic(fmt.Sprintf("video: unknown class %d", int(c)))
}

// SourceConfig configures a synthetic source.
type SourceConfig struct {
	// Class selects the content dynamics. Default TalkingHead.
	Class Class
	// FPS is the capture rate. Default 30.
	FPS int
	// Seed seeds the source's private PRNG.
	Seed int64
}

// Source generates frames deterministically from its seed. Not safe for
// concurrent use.
type Source struct {
	cfg    SourceConfig
	p      params
	rng    *stats.Rand
	index  int
	motion float64 // AR(1) state: temporal/spatial ratio
}

// Validate checks the configuration and reports the first problem found.
// NewSource validates what it accepts; call Validate directly when
// building a SourceConfig that is stored or forwarded rather than passed
// straight to the constructor.
func (c *SourceConfig) Validate() error {
	if c.FPS < 0 {
		return fmt.Errorf("video: negative SourceConfig.FPS %d", c.FPS)
	}
	if c.Class < TalkingHead || c.Class > Sports {
		return fmt.Errorf("video: unknown SourceConfig.Class %d", int(c.Class))
	}
	return nil
}

// NewSource returns a source for the given configuration. It panics on an
// invalid configuration (see Validate).
func NewSource(cfg SourceConfig) *Source {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	p := classParams(cfg.Class)
	return &Source{
		cfg:    cfg,
		p:      p,
		rng:    stats.NewRand(cfg.Seed),
		motion: p.motionBase,
	}
}

// FPS returns the capture rate.
func (s *Source) FPS() int { return s.cfg.FPS }

// FrameInterval returns the capture period.
func (s *Source) FrameInterval() time.Duration {
	return time.Duration(float64(time.Second) / float64(s.cfg.FPS))
}

// Class returns the content class.
func (s *Source) Class() Class { return s.cfg.Class }

// Next produces the next frame.
func (s *Source) Next() Frame {
	p := s.p
	// Spatial complexity: slowly varying around the class mean.
	spatial := s.rng.Jitter(p.spatialBase, p.spatialSigma)

	// Motion: AR(1) around the class mean with multiplicative noise.
	s.motion = p.ar*s.motion + (1-p.ar)*p.motionBase
	motion := stats.Clamp(s.rng.Jitter(s.motion, p.motionSigma), 0.005, 0.95)

	cut := s.rng.Bool(p.sceneCutProb)
	temporal := spatial * motion
	if cut {
		// A scene change makes inter prediction nearly useless.
		temporal = spatial * stats.Clamp(0.8+0.2*s.rng.Float64(), 0, 1)
		// Motion stays elevated for a few frames after a cut.
		s.motion = stats.Clamp(s.motion*2, 0, 0.9)
	}

	f := Frame{
		Index:    s.index,
		PTS:      time.Duration(s.index) * s.FrameInterval(),
		Spatial:  spatial,
		Temporal: temporal,
		SceneCut: cut,
	}
	s.index++
	return f
}

// Take returns the next n frames.
func (s *Source) Take(n int) []Frame {
	out := make([]Frame, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}
