package video

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(SourceConfig{Class: Gaming, Seed: 42})
	b := NewSource(SourceConfig{Class: Gaming, Seed: 42})
	for i := 0; i < 500; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("frame %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(SourceConfig{Seed: 1})
	b := NewSource(SourceConfig{Seed: 2})
	same := true
	for i := 0; i < 50; i++ {
		if a.Next().Spatial != b.Next().Spatial {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical complexity streams")
	}
}

func TestFrameTimestamps(t *testing.T) {
	s := NewSource(SourceConfig{FPS: 30})
	if s.FrameInterval() != time.Second/30 {
		t.Errorf("FrameInterval = %v, want %v", s.FrameInterval(), time.Second/30)
	}
	for i := 0; i < 10; i++ {
		f := s.Next()
		if f.Index != i {
			t.Errorf("frame %d has Index %d", i, f.Index)
		}
		want := time.Duration(i) * s.FrameInterval()
		if f.PTS != want {
			t.Errorf("frame %d PTS = %v, want %v", i, f.PTS, want)
		}
	}
}

func TestDefaultFPS(t *testing.T) {
	s := NewSource(SourceConfig{})
	if s.FPS() != 30 {
		t.Errorf("default FPS = %d, want 30", s.FPS())
	}
}

func TestComplexityInvariants(t *testing.T) {
	for _, class := range Classes() {
		s := NewSource(SourceConfig{Class: class, Seed: 7})
		for i := 0; i < 2000; i++ {
			f := s.Next()
			if f.Spatial <= 0 {
				t.Fatalf("%v frame %d: non-positive spatial %v", class, i, f.Spatial)
			}
			if f.Temporal <= 0 {
				t.Fatalf("%v frame %d: non-positive temporal %v", class, i, f.Temporal)
			}
			if f.Temporal > f.Spatial*1.01 {
				t.Fatalf("%v frame %d: temporal %v exceeds spatial %v", class, i, f.Temporal, f.Spatial)
			}
		}
	}
}

func TestSceneCutsElevateTemporal(t *testing.T) {
	s := NewSource(SourceConfig{Class: ScreenShare, Seed: 3})
	cuts, regular := 0, 0
	var cutRatio, regRatio float64
	for i := 0; i < 20000; i++ {
		f := s.Next()
		r := f.Temporal / f.Spatial
		if f.SceneCut {
			cuts++
			cutRatio += r
		} else {
			regular++
			regRatio += r
		}
	}
	if cuts == 0 {
		t.Fatal("screen-share source produced no scene cuts in 20000 frames")
	}
	cutMean := cutRatio / float64(cuts)
	regMean := regRatio / float64(regular)
	if cutMean < 4*regMean {
		t.Errorf("scene cuts should sharply elevate temporal/spatial: cut=%.3f regular=%.3f", cutMean, regMean)
	}
}

func TestClassOrdering(t *testing.T) {
	// Sports must be more temporally complex than TalkingHead on average —
	// this ordering is what makes per-class experiment results meaningful.
	mean := func(c Class) float64 {
		s := NewSource(SourceConfig{Class: c, Seed: 5})
		var sum float64
		const n = 5000
		for i := 0; i < n; i++ {
			sum += s.Next().Temporal
		}
		return sum / n
	}
	th, sp := mean(TalkingHead), mean(Sports)
	if sp < 3*th {
		t.Errorf("Sports temporal complexity (%.0f) should dominate TalkingHead (%.0f)", sp, th)
	}
}

func TestTake(t *testing.T) {
	s := NewSource(SourceConfig{Seed: 1})
	fs := s.Take(10)
	if len(fs) != 10 {
		t.Fatalf("Take(10) returned %d frames", len(fs))
	}
	for i, f := range fs {
		if f.Index != i {
			t.Errorf("Take frame %d has index %d", i, f.Index)
		}
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		TalkingHead: "talking-head",
		ScreenShare: "screen-share",
		Gaming:      "gaming",
		Sports:      "sports",
		Class(99):   "Class(99)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

// Property: any seed/class combination keeps complexity positive and
// bounded, and indices strictly increasing.
func TestSourceInvariantProperty(t *testing.T) {
	f := func(seed int64, classRaw uint8) bool {
		class := Classes()[int(classRaw)%len(Classes())]
		s := NewSource(SourceConfig{Class: class, Seed: seed})
		prev := -1
		for i := 0; i < 300; i++ {
			fr := s.Next()
			if fr.Spatial <= 0 || fr.Temporal <= 0 || fr.Spatial > 1e6 {
				return false
			}
			if fr.Index != prev+1 {
				return false
			}
			prev = fr.Index
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
