// Package rtcadapt is a faithful, self-contained reproduction of
// "Adaptive Video Encoder for Network Bandwidth Drops in Real-Time
// Communication" (Meng, Huang, Meng — HKUST, SIGCOMM 2025 Posters & Demos).
//
// The library simulates a complete RTC pipeline — synthetic video source,
// x264-like rate-controlled encoder, RTP packetization, pacing, a
// trace-driven bottleneck link, reassembly, jitter buffering, and
// GCC-style congestion control — and implements the paper's contribution:
// an encoder controller that reacts to bandwidth drops within one feedback
// interval by adjusting codec parameters (QP clamping, frame-size capping,
// VBV re-initialization, keyframe suppression, frame skipping) instead of
// waiting for native rate control to converge.
//
// This root package is the public facade: it re-exports the pieces a user
// composes (session configuration, controllers, estimators, traces, and
// the experiment suite) so downstream code imports only "rtcadapt".
//
// Quick start:
//
//	res := rtcadapt.Run(rtcadapt.SessionConfig{
//	        Trace:      rtcadapt.StepDrop(2.5e6, 0.8e6, 10*time.Second),
//	        Controller: rtcadapt.NewAdaptive(rtcadapt.AdaptiveConfig{}),
//	})
//	fmt.Println(res.Report.P95NetDelay)
package rtcadapt

import (
	"time"

	"rtcadapt/internal/cc"
	"rtcadapt/internal/codec"
	"rtcadapt/internal/core"
	"rtcadapt/internal/metrics"
	"rtcadapt/internal/session"
	"rtcadapt/internal/trace"
	"rtcadapt/internal/units"
	"rtcadapt/internal/video"
)

// BitsPerSec is a data rate in bits per second (re-exported from
// internal/units so public configs can be built with dimensioned values).
type BitsPerSec = units.BitsPerSec

// Bytes is a data size in bytes.
type Bytes = units.Bytes

// Bits is a data size in bits.
type Bits = units.Bits

// SessionConfig configures one end-to-end simulated RTC session.
type SessionConfig = session.Config

// Result is the output of a session run: the per-frame ledger, aggregate
// report, control-plane timeline, and link statistics.
type Result = session.Result

// Run executes one deterministic end-to-end session.
func Run(cfg SessionConfig) Result { return session.Run(cfg) }

// Controller decides per-frame encoder directives; implementations are the
// paper's adaptive scheme and the baselines.
type Controller = core.Controller

// AdaptiveConfig parameterizes the paper's adaptive controller, including
// the per-mechanism ablation switches.
type AdaptiveConfig = core.AdaptiveConfig

// NewAdaptive returns the paper's adaptive encoder controller.
func NewAdaptive(cfg AdaptiveConfig) *core.Adaptive { return core.NewAdaptive(cfg) }

// NewNativeRC returns the slow-reconfiguration baseline controller.
func NewNativeRC() *core.NativeRC { return core.NewNativeRC() }

// NewResetOnly returns the instant-retarget-only baseline controller.
func NewResetOnly() *core.ResetOnly { return core.NewResetOnly() }

// Estimator is a sender-side bandwidth estimator.
type Estimator = cc.Estimator

// CapacityFunc reads true link capacity at a virtual time (used by the
// oracle estimator).
type CapacityFunc = cc.CapacityFunc

// NewGCC returns a Google-Congestion-Control-style delay-gradient
// estimator with default parameters.
func NewGCC() Estimator { return cc.NewGCC(cc.GCCConfig{}) }

// NewOracle returns a clairvoyant estimator reading the true capacity
// scaled by margin.
func NewOracle(capacity CapacityFunc, margin float64) Estimator {
	return cc.NewOracle(capacity, margin)
}

// Trace is a piecewise-constant bottleneck capacity function.
type Trace = trace.Trace

// Constant returns a fixed-capacity trace.
func Constant(bps BitsPerSec) *Trace { return trace.Constant(bps) }

// StepDrop returns the paper's motivating workload: capacity before until
// dropAt, then after.
func StepDrop(before, after BitsPerSec, dropAt time.Duration) *Trace {
	return trace.StepDrop(before, after, dropAt)
}

// LTE generates a synthetic cellular capacity trace with deep fades.
func LTE(seed int64, dur time.Duration) *Trace {
	return trace.LTE(seed, dur, trace.LTEConfig{})
}

// WiFi generates a synthetic WLAN capacity trace with contention dips.
func WiFi(seed int64, dur time.Duration) *Trace {
	return trace.WiFi(seed, dur, trace.WiFiConfig{})
}

// ContentClass selects the synthetic video content dynamics.
type ContentClass = video.Class

// Content classes.
const (
	TalkingHead = video.TalkingHead
	ScreenShare = video.ScreenShare
	Gaming      = video.Gaming
	Sports      = video.Sports
)

// Report is the aggregate latency/quality summary of a session window.
type Report = metrics.Report

// FrameRecord is one captured frame's ledger entry.
type FrameRecord = metrics.FrameRecord

// Summarize aggregates records whose capture time falls in [from, to).
func Summarize(records []FrameRecord, from, to, frameInterval time.Duration) Report {
	return metrics.Summarize(records, from, to, frameInterval)
}

// MOS maps a Report to a 1..5 mean-opinion-score QoE estimate.
func MOS(rep Report) float64 { return metrics.MOS(rep) }

// SharedConfig describes the common bottleneck of a multi-flow run.
type SharedConfig = session.SharedConfig

// RunShared executes several flows through one shared bottleneck link and
// returns their results in input order.
func RunShared(shared SharedConfig, flows []SessionConfig) []Result {
	return session.RunShared(shared, flows)
}

// EncoderConfig exposes the x264-like encoder model's knobs for
// SessionConfig.Encoder (temporal layers, VBV sizing, QP bounds, ...).
type EncoderConfig = codec.Config
