package rtcadapt_test

import (
	"testing"
	"time"

	"rtcadapt"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README's
// quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	res := rtcadapt.Run(rtcadapt.SessionConfig{
		Duration:   10 * time.Second,
		Seed:       1,
		Content:    rtcadapt.TalkingHead,
		Trace:      rtcadapt.StepDrop(2.5e6, 0.8e6, 5*time.Second),
		Controller: rtcadapt.NewAdaptive(rtcadapt.AdaptiveConfig{}),
	})
	if res.Report.Frames == 0 {
		t.Fatal("no frames")
	}
	if res.Report.P95NetDelay <= 0 {
		t.Error("no latency stats")
	}
	if mos := rtcadapt.MOS(res.Report); mos < 1 || mos > 5 {
		t.Errorf("MOS %v out of scale", mos)
	}
	post := rtcadapt.Summarize(res.Records, 5*time.Second, 10*time.Second, res.FrameInterval)
	if post.Frames == 0 {
		t.Error("windowed summary empty")
	}
}

// TestPublicAPIControllersAndTraces covers the constructor surface.
func TestPublicAPIControllersAndTraces(t *testing.T) {
	controllers := []rtcadapt.Controller{
		rtcadapt.NewNativeRC(),
		rtcadapt.NewResetOnly(),
		rtcadapt.NewAdaptive(rtcadapt.AdaptiveConfig{EnableResolution: true}),
	}
	traces := []*rtcadapt.Trace{
		rtcadapt.Constant(2e6),
		rtcadapt.LTE(1, 5*time.Second),
		rtcadapt.WiFi(1, 5*time.Second),
	}
	for i, ctrl := range controllers {
		res := rtcadapt.Run(rtcadapt.SessionConfig{
			Duration:   5 * time.Second,
			Seed:       int64(i),
			Trace:      traces[i],
			Controller: ctrl,
		})
		if res.ControllerName == "" {
			t.Errorf("controller %d missing name", i)
		}
	}
}

// TestPublicAPIEstimators covers the estimator constructors.
func TestPublicAPIEstimators(t *testing.T) {
	if rtcadapt.NewGCC().Name() != "gcc" {
		t.Error("gcc constructor")
	}
	oracle := rtcadapt.NewOracle(func(time.Duration) rtcadapt.BitsPerSec { return 1e6 }, 0.9)
	if oracle.Snapshot(0).Target != 0.9e6 {
		t.Error("oracle constructor")
	}
}

// TestPublicAPIRunShared covers the multi-flow entry point.
func TestPublicAPIRunShared(t *testing.T) {
	mk := func(seed int64) rtcadapt.SessionConfig {
		return rtcadapt.SessionConfig{
			Duration:   8 * time.Second,
			Seed:       seed,
			Controller: rtcadapt.NewAdaptive(rtcadapt.AdaptiveConfig{}),
		}
	}
	results := rtcadapt.RunShared(
		rtcadapt.SharedConfig{Trace: rtcadapt.Constant(3e6)},
		[]rtcadapt.SessionConfig{mk(1), mk(2)},
	)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Report.DeliveredFrames == 0 {
			t.Errorf("flow %d delivered nothing", i)
		}
	}
}

// TestPublicAPIEncoderKnobs covers EncoderConfig passthrough.
func TestPublicAPIEncoderKnobs(t *testing.T) {
	res := rtcadapt.Run(rtcadapt.SessionConfig{
		Duration:   5 * time.Second,
		Trace:      rtcadapt.Constant(2e6),
		Controller: rtcadapt.NewResetOnly(),
		Encoder:    rtcadapt.EncoderConfig{TemporalLayers: 2},
	})
	sawTL1 := false
	for _, rec := range res.Records {
		if rec.TemporalLayer == 1 {
			sawTL1 = true
			break
		}
	}
	if !sawTL1 {
		t.Error("temporal layers not applied through the facade")
	}
}
